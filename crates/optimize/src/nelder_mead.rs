use crate::{
    Bounds, Counted, FnObjective, OptimizeError, OptimizeResult, Optimizer, Options, Termination,
};

/// The Nelder–Mead downhill-simplex method, one of the paper's two
/// gradient-free optimizers.
///
/// Implements the standard reflection / expansion / contraction / shrink
/// scheme with the adaptive coefficients of Gao & Han (scaled by dimension,
/// matching SciPy's `adaptive=True` behaviour for small problems reduces to
/// the classic 1, 2, 0.5, 0.5). Box constraints are enforced by clamping
/// every trial vertex into the box, the same strategy SciPy users apply via
/// parameter transforms for the QAOA domain `β ∈ [0,π], γ ∈ [0,2π]`.
///
/// # Example
///
/// ```
/// use optimize::{Bounds, NelderMead, Optimizer, Options};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let rosenbrock = |x: &[f64]| {
///     (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
/// };
/// let bounds = Bounds::uniform(2, -5.0, 5.0)?;
/// let opts = Options::default().with_max_iters(2000);
/// let r = NelderMead::default().minimize(&rosenbrock, &[-1.2, 1.0], &bounds, &opts)?;
/// assert!((r.x[0] - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMead {
    /// Reflection coefficient (α > 0).
    pub alpha: f64,
    /// Expansion coefficient (χ > 1).
    pub chi: f64,
    /// Contraction coefficient (0 < ψ < 1).
    pub psi: f64,
    /// Shrink coefficient (0 < σ < 1).
    pub sigma: f64,
    /// Relative size of the initial simplex (fraction of each bound width).
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            chi: 2.0,
            psi: 0.5,
            sigma: 0.5,
            initial_step: 0.05,
        }
    }
}

impl NelderMead {
    /// Builds the initial simplex: `x0` plus one perturbed vertex per axis.
    fn initial_simplex(&self, x0: &[f64], bounds: &Bounds) -> Vec<Vec<f64>> {
        let n = x0.len();
        let mut simplex = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            let step = (self.initial_step * bounds.width(i)).max(1e-4);
            // Step toward whichever side has room.
            if v[i] + step <= bounds.upper()[i] {
                v[i] += step;
            } else {
                v[i] -= step;
            }
            simplex.push(bounds.project(&v));
        }
        simplex
    }
}

fn centroid(simplex: &[Vec<f64>], exclude: usize) -> Vec<f64> {
    let n = simplex[0].len();
    let mut c = vec![0.0; n];
    for (k, v) in simplex.iter().enumerate() {
        if k == exclude {
            continue;
        }
        for (ci, vi) in c.iter_mut().zip(v) {
            *ci += vi;
        }
    }
    let m = (simplex.len() - 1) as f64;
    for ci in &mut c {
        *ci /= m;
    }
    c
}

fn blend(a: &[f64], b: &[f64], t: f64, bounds: &Bounds) -> Vec<f64> {
    // a + t (a - b), clamped into the box.
    let raw: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(&ai, &bi)| ai + t * (ai - bi))
        .collect();
    bounds.project(&raw)
}

impl Optimizer for NelderMead {
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        if x0.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        if x0.len() != bounds.dim() {
            return Err(OptimizeError::DimensionMismatch {
                x0: x0.len(),
                bounds: bounds.dim(),
            });
        }
        let f = FnObjective(f);
        let counted = Counted::new(&f);
        let x0 = bounds.project(x0);

        let mut simplex = self.initial_simplex(&x0, bounds);
        let mut values: Vec<f64> = simplex.iter().map(|v| counted.eval(v)).collect();
        if !values[0].is_finite() {
            return Err(OptimizeError::NonFiniteObjective { value: values[0] });
        }

        let n = x0.len();
        let mut termination = Termination::MaxIterations;
        let mut iters = 0;

        for iter in 0..options.max_iters {
            iters = iter + 1;
            // Order the simplex by objective value.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];

            // SciPy-style convergence: value spread and vertex spread.
            let f_spread = (values[worst] - values[best]).abs();
            let x_spread = simplex
                .iter()
                .flat_map(|v| v.iter().zip(&simplex[best]).map(|(a, b)| (a - b).abs()))
                .fold(0.0_f64, f64::max);
            if f_spread <= options.ftol * (1.0 + values[best].abs())
                && x_spread <= options.ftol.sqrt()
            {
                termination = Termination::FtolSatisfied;
                break;
            }
            if options.calls_exhausted(counted.count()) {
                termination = Termination::MaxCalls;
                break;
            }
            if !values[worst].is_finite() {
                termination = Termination::NonFinite;
                break;
            }

            let c = centroid(&simplex, worst);
            // Reflection.
            let xr = blend(&c, &simplex[worst], self.alpha, bounds);
            let fr = counted.eval(&xr);

            if fr < values[best] {
                // Expansion.
                let xe = blend(&c, &simplex[worst], self.alpha * self.chi, bounds);
                let fe = counted.eval(&xe);
                if fe < fr {
                    simplex[worst] = xe;
                    values[worst] = fe;
                } else {
                    simplex[worst] = xr;
                    values[worst] = fr;
                }
            } else if fr < values[second_worst] {
                simplex[worst] = xr;
                values[worst] = fr;
            } else {
                // Contraction (outside if the reflection helped the worst).
                let (xc, fc) = if fr < values[worst] {
                    let xc = blend(&c, &simplex[worst], self.alpha * self.psi, bounds);
                    let fc = counted.eval(&xc);
                    (xc, fc)
                } else {
                    let xc = blend(&c, &simplex[worst], -self.psi, bounds);
                    let fc = counted.eval(&xc);
                    (xc, fc)
                };
                if fc < values[worst].min(fr) {
                    simplex[worst] = xc;
                    values[worst] = fc;
                } else {
                    // Shrink toward the best vertex.
                    let best_v = simplex[best].clone();
                    for (k, v) in simplex.iter_mut().enumerate() {
                        if k == best {
                            continue;
                        }
                        for (vi, bi) in v.iter_mut().zip(&best_v) {
                            *vi = bi + self.sigma * (*vi - bi);
                        }
                        values[k] = counted.eval(v);
                    }
                }
            }
        }

        let best = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty simplex");
        Ok(OptimizeResult {
            x: simplex.swap_remove(best),
            fx: values[best],
            n_calls: counted.count(),
            n_grad_calls: 0,
            n_iters: iters,
            termination,
        })
    }

    fn name(&self) -> &'static str {
        "Nelder-Mead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn minimizes_sphere() {
        let b = Bounds::uniform(3, -2.0, 2.0).unwrap();
        let r = NelderMead::default()
            .minimize(&sphere, &[1.0, -1.5, 0.7], &b, &Options::default())
            .unwrap();
        assert!(r.fx < 1e-6, "{r}");
        assert!(r.converged());
    }

    #[test]
    fn respects_bounds() {
        // Unconstrained minimum at (3, 3); box caps at 1.
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2);
        let b = Bounds::uniform(2, -1.0, 1.0).unwrap();
        let r = NelderMead::default()
            .minimize(&f, &[0.0, 0.0], &b, &Options::default())
            .unwrap();
        assert!(b.contains(&r.x));
        assert!((r.x[0] - 1.0).abs() < 1e-3);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn max_calls_cap_respected() {
        let b = Bounds::uniform(2, -5.0, 5.0).unwrap();
        let opts = Options::default().with_max_calls(10);
        let r = NelderMead::default()
            .minimize(&sphere, &[4.0, 4.0], &b, &opts)
            .unwrap();
        assert_eq!(r.termination, Termination::MaxCalls);
        // The cap is checked per iteration; one iteration adds at most n+2 calls.
        assert!(r.n_calls <= 10 + 4);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert!(matches!(
            NelderMead::default().minimize(&sphere, &[0.5], &b, &Options::default()),
            Err(OptimizeError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            NelderMead::default().minimize(&sphere, &[], &b, &Options::default()),
            Err(OptimizeError::EmptyProblem)
        ));
    }

    #[test]
    fn nonfinite_start_rejected() {
        let f = |_: &[f64]| f64::NAN;
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        assert!(matches!(
            NelderMead::default().minimize(&f, &[0.5], &b, &Options::default()),
            Err(OptimizeError::NonFiniteObjective { .. })
        ));
    }

    #[test]
    fn start_on_upper_bound_builds_valid_simplex() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let f = |x: &[f64]| sphere(x);
        let r = NelderMead::default()
            .minimize(&f, &[1.0, 1.0], &b, &Options::default())
            .unwrap();
        assert!(r.fx < 1e-6);
    }

    #[test]
    fn one_dimensional() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2);
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        let r = NelderMead::default()
            .minimize(&f, &[0.9], &b, &Options::default())
            .unwrap();
        assert!((r.x[0] - 0.3).abs() < 1e-4);
    }
}
