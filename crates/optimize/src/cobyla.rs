use crate::{
    Bounds, Counted, FnObjective, OptimizeError, OptimizeResult, Optimizer, Options, Termination,
};

/// Constrained optimization by linear approximation — the workspace's
/// COBYLA, the paper's second gradient-free optimizer.
///
/// Powell's COBYLA maintains a simplex of `n + 1` interpolation points, fits
/// a linear model of the objective (and constraints) through them, and takes
/// trust-region steps of radius ρ that shrinks from `rho_begin` to
/// `rho_end`. This implementation reproduces that structure for the
/// box-constrained case: the linear model is the exact interpolant through
/// the simplex, the trust-region step minimizes it inside `‖d‖ ≤ ρ` ∩ box,
/// and degenerate simplex geometry triggers a geometry-improving replacement
/// step, as in Powell's method. General inequality constraints (which the
/// paper's problems don't have — bounds are handled directly) are not
/// implemented; DESIGN.md records the substitution.
///
/// Non-finite objective values encountered after the start are treated as a
/// large penalty (`NON_FINITE_PENALTY`) so the simplex retreats from NaN/∞
/// regions instead of aborting.
///
/// # Example
///
/// ```
/// use optimize::{Bounds, Cobyla, Optimizer, Options};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let f = |x: &[f64]| (x[0] - 0.25_f64).powi(2) + (x[1] - 0.75_f64).powi(2);
/// let bounds = Bounds::uniform(2, 0.0, 1.0)?;
/// let r = Cobyla::default().minimize(&f, &[0.9, 0.1], &bounds, &Options::default())?;
/// assert!(r.fx < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cobyla {
    /// Initial trust-region radius, as a fraction of the mean bound width
    /// (SciPy's `rhobeg` default is 1.0 in absolute units; QAOA domains span
    /// π–2π so a relative radius transfers better across problems).
    pub rho_begin_rel: f64,
    /// Final trust-region radius (absolute). Termination threshold.
    pub rho_end: f64,
}

impl Default for Cobyla {
    fn default() -> Self {
        Self {
            rho_begin_rel: 0.15,
            rho_end: 1e-6,
        }
    }
}

/// Substitute for non-finite objective values: large enough to repel the
/// simplex, small enough to keep the linear model finite.
const NON_FINITE_PENALTY: f64 = 1e30;

fn penalized(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        NON_FINITE_PENALTY
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fits the linear interpolant `f(x) ≈ f(x₀) + gᵀ(x − x₀)` through the
/// simplex (vertex 0 is the base). Returns `None` if the simplex is
/// degenerate (singular difference matrix).
fn fit_linear_model(simplex: &[Vec<f64>], values: &[f64]) -> Option<Vec<f64>> {
    let n = simplex[0].len();
    // Rows: (x_i − x_0), rhs: f_i − f_0. Solve the n×n system.
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = simplex[i + 1][j] - simplex[0][j];
        }
        b[i] = values[i + 1] - values[0];
    }
    // Gaussian elimination with partial pivoting.
    for k in 0..n {
        let mut piv = k;
        for r in (k + 1)..n {
            if a[r * n + k].abs() > a[piv * n + k].abs() {
                piv = r;
            }
        }
        if a[piv * n + k].abs() < 1e-12 {
            return None;
        }
        if piv != k {
            for c in 0..n {
                a.swap(k * n + c, piv * n + c);
            }
            b.swap(k, piv);
        }
        for r in (k + 1)..n {
            let factor = a[r * n + k] / a[k * n + k];
            for c in k..n {
                a[r * n + c] -= factor * a[k * n + c];
            }
            b[r] -= factor * b[k];
        }
    }
    for k in (0..n).rev() {
        let mut s = b[k];
        for c in (k + 1)..n {
            s -= a[k * n + c] * b[c];
        }
        b[k] = s / a[k * n + k];
    }
    Some(b)
}

impl Optimizer for Cobyla {
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        if x0.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        if x0.len() != bounds.dim() {
            return Err(OptimizeError::DimensionMismatch {
                x0: x0.len(),
                bounds: bounds.dim(),
            });
        }
        let n = x0.len();
        let f = FnObjective(f);
        let counted = Counted::new(&f);
        let x0 = bounds.project(x0);

        let mean_width: f64 = (0..n).map(|i| bounds.width(i)).sum::<f64>() / n as f64;
        let mut rho = (self.rho_begin_rel * mean_width).max(self.rho_end * 10.0);

        // Initial simplex: x0 plus ρ-steps along each axis (direction chosen
        // to stay in the box).
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.clone());
        for i in 0..n {
            let mut v = x0.clone();
            if v[i] + rho <= bounds.upper()[i] {
                v[i] += rho;
            } else {
                v[i] -= rho;
            }
            simplex.push(bounds.project(&v));
        }
        let raw0 = counted.eval(&simplex[0]);
        if !raw0.is_finite() {
            return Err(OptimizeError::NonFiniteObjective { value: raw0 });
        }
        let mut values: Vec<f64> = std::iter::once(raw0)
            .chain(simplex[1..].iter().map(|v| penalized(counted.eval(v))))
            .collect();

        let mut termination = Termination::MaxIterations;
        let mut iters = 0;

        for iter in 0..options.max_iters {
            iters = iter + 1;
            if options.calls_exhausted(counted.count()) {
                termination = Termination::MaxCalls;
                break;
            }

            // Keep the best vertex at position 0.
            let best = values
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty simplex");
            simplex.swap(0, best);
            values.swap(0, best);

            let Some(g) = fit_linear_model(&simplex, &values) else {
                // Degenerate geometry: rebuild the simplex around the best
                // vertex at the current radius (Powell's geometry step).
                let base = simplex[0].clone();
                for i in 0..n {
                    let mut v = base.clone();
                    if v[i] + rho <= bounds.upper()[i] {
                        v[i] += rho;
                    } else {
                        v[i] -= rho;
                    }
                    let v = bounds.project(&v);
                    values[i + 1] = penalized(counted.eval(&v));
                    simplex[i + 1] = v;
                }
                continue;
            };

            let gnorm = dot(&g, &g).sqrt();
            if gnorm < 1e-14 {
                // Flat model: either converged or need a smaller radius.
                if rho <= self.rho_end {
                    termination = Termination::StepSizeZero;
                    break;
                }
                rho *= 0.5;
                continue;
            }

            // Trust-region step: minimize the linear model inside ‖d‖ ≤ ρ,
            // then project into the box.
            let trial: Vec<f64> = simplex[0]
                .iter()
                .zip(&g)
                .map(|(&xi, &gi)| xi - rho * gi / gnorm)
                .collect();
            let trial = bounds.project(&trial);
            let f_trial = penalized(counted.eval(&trial));

            let predicted = rho * gnorm; // model decrease for the full step
            let actual = values[0] - f_trial;

            // Replace the worst vertex with the trial point (keeps geometry
            // fresh whether or not the step succeeded).
            let worst = values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty simplex");
            if f_trial < values[worst] {
                simplex[worst] = trial;
                values[worst] = f_trial;
            }

            // A step is successful only if it achieves a reasonable fraction
            // of the model's predicted decrease AND the decrease is
            // meaningful at the requested tolerance. Without the second
            // condition, fixed-radius steps can keep collecting tiny gains
            // around a minimum and the radius never shrinks (Powell's COBYLA
            // shrinks once progress at the current resolution is exhausted).
            let meaningful = actual > options.ftol * (1.0 + values[0].abs());
            if actual > 0.1 * predicted && meaningful {
                // Successful step: keep the radius.
            } else {
                // Progress at this resolution is exhausted: shrink.
                if rho <= self.rho_end {
                    termination = if meaningful {
                        Termination::StepSizeZero
                    } else {
                        Termination::FtolSatisfied
                    };
                    break;
                }
                rho *= 0.5;
            }
        }

        let best = values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty simplex");
        Ok(OptimizeResult {
            x: simplex.swap_remove(best),
            fx: values[best],
            n_calls: counted.count(),
            n_grad_calls: 0,
            n_iters: iters,
            termination,
        })
    }

    fn name(&self) -> &'static str {
        "COBYLA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn minimizes_quadratic() {
        let b = Bounds::uniform(2, -2.0, 2.0).unwrap();
        let r = Cobyla::default()
            .minimize(
                &sphere,
                &[1.5, -1.0],
                &b,
                &Options::default().with_max_iters(2000),
            )
            .unwrap();
        assert!(r.fx < 1e-6, "{r}");
    }

    #[test]
    fn pinned_at_bound() {
        let f = |x: &[f64]| (x[0] - 5.0) * (x[0] - 5.0);
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        let r = Cobyla::default()
            .minimize(&f, &[0.1], &b, &Options::default().with_max_iters(2000))
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{r}");
        assert!(b.contains(&r.x));
    }

    #[test]
    fn linear_model_exact_on_linear_function() {
        let simplex = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let values = vec![1.0, 3.0, 0.0]; // f = 1 + 2x - y
        let g = fit_linear_model(&simplex, &values).unwrap();
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_simplex_detected() {
        let simplex = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![2.0, 0.0]];
        assert!(fit_linear_model(&simplex, &[0.0, 1.0, 2.0]).is_none());
    }

    #[test]
    fn flat_objective_terminates() {
        let f = |_: &[f64]| 7.0;
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let r = Cobyla::default()
            .minimize(&f, &[0.5, 0.5], &b, &Options::default())
            .unwrap();
        assert_eq!(r.fx, 7.0);
        assert!(r.converged(), "{r}");
    }

    #[test]
    fn call_budget() {
        let b = Bounds::uniform(4, -5.0, 5.0).unwrap();
        let opts = Options::default().with_max_calls(12).with_ftol(0.0);
        let r = Cobyla::default()
            .minimize(&sphere, &[4.0; 4], &b, &opts)
            .unwrap();
        assert!(r.n_calls <= 12 + 6);
    }

    #[test]
    fn error_paths() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert!(Cobyla::default()
            .minimize(&sphere, &[0.5], &b, &Options::default())
            .is_err());
        let nan = |_: &[f64]| f64::NAN;
        assert!(Cobyla::default()
            .minimize(&nan, &[0.5, 0.5], &b, &Options::default())
            .is_err());
    }
}
