use crate::{
    Bounds, Counted, FnObjective, OptimizeError, OptimizeResult, Optimizer, Options, Termination,
};

/// Powell's conjugate-direction method (derivative-free).
///
/// SciPy ships `method="Powell"` alongside the four optimizers the paper
/// benchmarks; it is included here as an extension so the `optimizer_zoo`
/// study can place the two-level flow on a broader optimizer spectrum.
///
/// Each outer iteration line-minimizes along every direction of the current
/// direction set (initially the coordinate axes), then replaces the
/// direction of largest decrease with the overall displacement, per Powell's
/// classic update with the Acton/Numerical-Recipes acceptance test. Line
/// minimization is a bounded golden-section search over the feasible segment
/// of the box, so every iterate is feasible by construction.
///
/// # Example
///
/// ```
/// use optimize::{Bounds, Optimizer, Options, Powell};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 0.5).powi(2);
/// let bounds = Bounds::uniform(2, -2.0, 2.0)?;
/// let r = Powell::default().minimize(&f, &[0.0, 0.0], &bounds, &Options::default())?;
/// assert!(r.fx < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Powell {
    /// Relative tolerance of each golden-section line search.
    pub line_tol: f64,
    /// Maximum golden-section iterations per line search.
    pub line_max_iters: usize,
}

impl Default for Powell {
    fn default() -> Self {
        Self {
            line_tol: 1e-8,
            line_max_iters: 100,
        }
    }
}

/// Feasible parameter interval `[t_lo, t_hi]` of the ray `x + t d` in the box.
fn feasible_interval(x: &[f64], d: &[f64], bounds: &Bounds) -> Option<(f64, f64)> {
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for i in 0..x.len() {
        if d[i].abs() < 1e-300 {
            continue;
        }
        let a = (bounds.lower()[i] - x[i]) / d[i];
        let b = (bounds.upper()[i] - x[i]) / d[i];
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        lo = lo.max(a);
        hi = hi.min(b);
    }
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        None
    } else {
        Some((lo, hi))
    }
}

const INV_PHI: f64 = 0.618_033_988_749_894_8; // (√5 − 1) / 2

impl Powell {
    /// Golden-section minimization of `t ↦ f(x + t d)` over `[lo, hi]`.
    /// Returns `(t*, f(x + t* d))`.
    fn line_minimize(
        &self,
        counted: &Counted<'_>,
        x: &[f64],
        d: &[f64],
        lo: f64,
        hi: f64,
        bounds: &Bounds,
    ) -> (f64, f64) {
        let probe = |t: f64| {
            let p: Vec<f64> = x.iter().zip(d).map(|(&xi, &di)| xi + t * di).collect();
            counted.eval(&bounds.project(&p))
        };
        let mut a = lo;
        let mut b = hi;
        let mut c = b - INV_PHI * (b - a);
        let mut e = a + INV_PHI * (b - a);
        let mut fc = probe(c);
        let mut fe = probe(e);
        let scale = (hi - lo).abs().max(1.0);
        for _ in 0..self.line_max_iters {
            if (b - a).abs() <= self.line_tol * scale {
                break;
            }
            if fc < fe {
                b = e;
                e = c;
                fe = fc;
                c = b - INV_PHI * (b - a);
                fc = probe(c);
            } else {
                a = c;
                c = e;
                fc = fe;
                e = a + INV_PHI * (b - a);
                fe = probe(e);
            }
        }
        if fc < fe {
            (c, fc)
        } else {
            (e, fe)
        }
    }
}

impl Optimizer for Powell {
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        if x0.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        if x0.len() != bounds.dim() {
            return Err(OptimizeError::DimensionMismatch {
                x0: x0.len(),
                bounds: bounds.dim(),
            });
        }
        let f = FnObjective(f);
        let counted = Counted::new(&f);
        let n = x0.len();
        let mut x = bounds.project(x0);
        let mut fx = counted.eval(&x);
        if !fx.is_finite() {
            return Err(OptimizeError::NonFiniteObjective { value: fx });
        }

        // Direction set: the coordinate axes.
        let mut dirs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut d = vec![0.0; n];
                d[i] = 1.0;
                d
            })
            .collect();

        let mut termination = Termination::MaxIterations;
        let mut iters = 0;

        for iter in 0..options.max_iters {
            iters = iter + 1;
            let x_start = x.clone();
            let f_start = fx;
            let mut biggest_drop = 0.0;
            let mut biggest_idx = 0;

            for (k, d) in dirs.iter().enumerate() {
                if options.calls_exhausted(counted.count()) {
                    termination = Termination::MaxCalls;
                    break;
                }
                let Some((lo, hi)) = feasible_interval(&x, d, bounds) else {
                    continue;
                };
                if hi - lo < 1e-14 {
                    continue;
                }
                let (t, ft) = self.line_minimize(&counted, &x, d, lo, hi, bounds);
                if ft < fx {
                    let drop = fx - ft;
                    if drop > biggest_drop {
                        biggest_drop = drop;
                        biggest_idx = k;
                    }
                    for (xi, di) in x.iter_mut().zip(d) {
                        *xi += t * di;
                    }
                    bounds.project_in_place(&mut x);
                    fx = ft;
                }
            }
            if termination == Termination::MaxCalls {
                break;
            }
            if !fx.is_finite() {
                termination = Termination::NonFinite;
                break;
            }

            // Convergence on function decrease across the whole sweep.
            if 2.0 * (f_start - fx) <= options.ftol * (f_start.abs() + fx.abs() + 1e-20) {
                termination = Termination::FtolSatisfied;
                break;
            }

            // Powell's direction update: try the total displacement.
            let disp: Vec<f64> = x.iter().zip(&x_start).map(|(a, b)| a - b).collect();
            let disp_norm: f64 = disp.iter().map(|v| v * v).sum::<f64>().sqrt();
            if disp_norm > 1e-14 {
                // Extrapolated point 2x − x_start.
                let extrap: Vec<f64> = x.iter().zip(&x_start).map(|(a, b)| 2.0 * a - b).collect();
                let extrap = bounds.project(&extrap);
                let f_extrap = counted.eval(&extrap);
                if f_extrap < f_start {
                    // Numerical-Recipes acceptance test.
                    let t = 2.0
                        * (f_start - 2.0 * fx + f_extrap)
                        * (f_start - fx - biggest_drop).powi(2)
                        - biggest_drop * (f_start - f_extrap).powi(2);
                    if t < 0.0 {
                        if let Some((lo, hi)) = feasible_interval(&x, &disp, bounds) {
                            if hi - lo > 1e-14 {
                                let (t_min, ft) =
                                    self.line_minimize(&counted, &x, &disp, lo, hi, bounds);
                                if ft < fx {
                                    for (xi, di) in x.iter_mut().zip(&disp) {
                                        *xi += t_min * di;
                                    }
                                    bounds.project_in_place(&mut x);
                                    fx = ft;
                                }
                                dirs[biggest_idx] = dirs[n - 1].clone();
                                dirs[n - 1] = disp;
                            }
                        }
                    }
                }
            }
        }

        Ok(OptimizeResult {
            x,
            fx,
            n_calls: counted.count(),
            n_grad_calls: 0,
            n_iters: iters,
            termination,
        })
    }

    fn name(&self) -> &'static str {
        "Powell"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn minimizes_sphere() {
        let b = Bounds::uniform(3, -2.0, 2.0).unwrap();
        let r = Powell::default()
            .minimize(&sphere, &[1.0, -1.5, 0.7], &b, &Options::default())
            .unwrap();
        assert!(r.fx < 1e-10, "{r}");
        assert!(r.converged());
    }

    #[test]
    fn minimizes_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let b = Bounds::uniform(2, -5.0, 5.0).unwrap();
        let opts = Options::default().with_max_iters(500);
        let r = Powell::default()
            .minimize(&rosen, &[-1.2, 1.0], &b, &opts)
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{r}");
        assert!((r.x[1] - 1.0).abs() < 1e-4, "{r}");
    }

    #[test]
    fn respects_bounds() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 3.0).powi(2);
        let b = Bounds::uniform(2, -1.0, 1.0).unwrap();
        let r = Powell::default()
            .minimize(&f, &[0.0, 0.0], &b, &Options::default())
            .unwrap();
        assert!(b.contains(&r.x));
        assert!((r.x[0] - 1.0).abs() < 1e-6);
        assert!((r.x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn correlated_quadratic_uses_direction_update() {
        // Strongly coupled quadratic where axis moves alone converge slowly.
        let f = |x: &[f64]| {
            let u = x[0] + x[1];
            let v = x[0] - x[1];
            u * u + 100.0 * v * v
        };
        let b = Bounds::uniform(2, -4.0, 4.0).unwrap();
        let r = Powell::default()
            .minimize(&f, &[3.0, -2.0], &b, &Options::default())
            .unwrap();
        assert!(r.fx < 1e-8, "{r}");
    }

    #[test]
    fn start_at_corner() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let r = Powell::default()
            .minimize(&sphere, &[1.0, 1.0], &b, &Options::default())
            .unwrap();
        assert!(r.fx < 1e-10);
    }

    #[test]
    fn max_calls_cap_respected() {
        let b = Bounds::uniform(2, -5.0, 5.0).unwrap();
        let opts = Options::default().with_max_calls(15);
        let r = Powell::default()
            .minimize(&sphere, &[4.0, 4.0], &b, &opts)
            .unwrap();
        // The cap is checked before each direction sweep entry; one line
        // search adds at most line_max_iters+2 calls past the cap.
        assert!(r.n_calls <= 15 + 102 + 2);
    }

    #[test]
    fn dimension_checks() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert!(matches!(
            Powell::default().minimize(&sphere, &[0.5], &b, &Options::default()),
            Err(OptimizeError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Powell::default().minimize(&sphere, &[], &b, &Options::default()),
            Err(OptimizeError::EmptyProblem)
        ));
    }

    #[test]
    fn nonfinite_start_rejected() {
        let f = |_: &[f64]| f64::NAN;
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        assert!(matches!(
            Powell::default().minimize(&f, &[0.5], &b, &Options::default()),
            Err(OptimizeError::NonFiniteObjective { .. })
        ));
    }

    #[test]
    fn one_dimensional_quadratic() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2);
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        let r = Powell::default()
            .minimize(&f, &[0.9], &b, &Options::default())
            .unwrap();
        assert!((r.x[0] - 0.3).abs() < 1e-6);
    }
}
