//! Bound-constrained local optimizers with function-call accounting.
//!
//! This crate replaces the four SciPy optimizers the paper evaluates:
//!
//! * [`Lbfgsb`] — projected limited-memory BFGS (gradient-based; the paper's
//!   data-generation optimizer),
//! * [`Slsqp`] — sequential quadratic programming with a damped-BFGS Hessian
//!   (gradient-based),
//! * [`NelderMead`] — downhill simplex (gradient-free),
//! * [`Cobyla`] — linear-approximation trust region (gradient-free).
//!
//! All optimizers **minimize** `f` over a box [`Bounds`]; the QAOA layer
//! maximizes `⟨C⟩` by minimizing `-⟨C⟩`. Every objective evaluation — the
//! paper's *function call / QC call*, its headline cost metric — is counted
//! through the [`Counted`] wrapper, including those spent on finite-
//! difference gradients, exactly as SciPy reports `nfev`.
//!
//! # Example
//!
//! ```
//! use optimize::{Bounds, NelderMead, Optimizer, Options};
//!
//! # fn main() -> Result<(), optimize::OptimizeError> {
//! // Minimize a shifted quadratic inside [0, 4]^2.
//! let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.5).powi(2);
//! let bounds = Bounds::uniform(2, 0.0, 4.0)?;
//! let result = NelderMead::default().minimize(&f, &[3.0, 3.0], &bounds, &Options::default())?;
//! assert!(result.fx < 1e-6);
//! assert!(result.n_calls > 0);
//! # Ok(())
//! # }
//! ```

mod bounds;
mod cobyla;
mod counted;
mod error;
mod gradient;
mod lbfgsb;
mod nelder_mead;
mod objective;
mod options;
mod powell;
mod result;
mod slsqp;
mod spsa;

pub use bounds::Bounds;
pub use cobyla::Cobyla;
pub use counted::Counted;
pub use error::OptimizeError;
pub use gradient::{central_difference, forward_difference, gradient};
pub use objective::{Fallible, Objective};

pub use lbfgsb::Lbfgsb;
pub use nelder_mead::NelderMead;
pub(crate) use objective::FnObjective;
pub use options::Options;
pub use powell::Powell;
pub use result::{OptimizeResult, Termination};
pub use slsqp::Slsqp;
pub use spsa::Spsa;

/// A local minimizer of a scalar function over a box.
///
/// All four paper optimizers implement this trait, which lets the evaluation
/// harness sweep them uniformly (Table I iterates over
/// `[L-BFGS-B, Nelder-Mead, SLSQP, COBYLA]`).
pub trait Optimizer {
    /// Minimizes `f` starting from `x0` inside `bounds`.
    ///
    /// Implementations must count **every** call to `f` in the returned
    /// [`OptimizeResult::n_calls`], including gradient-estimation calls.
    ///
    /// # Errors
    ///
    /// * [`OptimizeError::DimensionMismatch`] if `x0.len() != bounds.dim()`.
    /// * [`OptimizeError::EmptyProblem`] for zero-dimensional input.
    /// * [`OptimizeError::NonFiniteObjective`] if `f` returns NaN/∞ at the
    ///   starting point (later non-finite values terminate gracefully).
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError>;

    /// Minimizes a gradient-capable [`Objective`]. Gradient-based
    /// optimizers (`Lbfgsb`, `Slsqp`) consume the analytic gradient when
    /// [`Objective::value_and_grad`] provides one — counted as
    /// [`OptimizeResult::n_grad_calls`] — and fall back to finite
    /// differences otherwise. The default implementation (all gradient-free
    /// methods) evaluates values only.
    ///
    /// # Errors
    ///
    /// Same contract as [`Optimizer::minimize`].
    fn minimize_objective(
        &self,
        f: &dyn Objective,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        self.minimize(&|x: &[f64]| f.value(x), x0, bounds, options)
    }

    /// Short, stable identifier used in benchmark tables (e.g. `"L-BFGS-B"`).
    fn name(&self) -> &'static str;
}

/// The four optimizers evaluated in the paper, as trait objects, in the
/// order of Table I.
///
/// ```
/// let opts = optimize::all_optimizers();
/// let names: Vec<_> = opts.iter().map(|o| o.name()).collect();
/// assert_eq!(names, ["L-BFGS-B", "Nelder-Mead", "SLSQP", "COBYLA"]);
/// ```
#[must_use]
pub fn all_optimizers() -> Vec<Box<dyn Optimizer + Send + Sync>> {
    vec![
        Box::new(Lbfgsb::default()),
        Box::new(NelderMead::default()),
        Box::new(Slsqp::default()),
        Box::new(Cobyla::default()),
    ]
}

/// The paper's four optimizers plus the extension methods ([`Powell`],
/// [`Spsa`]) used by the `optimizer_zoo` study.
///
/// ```
/// let opts = optimize::extended_optimizers();
/// assert_eq!(opts.len(), 6);
/// assert_eq!(opts.last().unwrap().name(), "SPSA");
/// ```
#[must_use]
pub fn extended_optimizers() -> Vec<Box<dyn Optimizer + Send + Sync>> {
    let mut v = all_optimizers();
    v.push(Box::new(Powell::default()));
    v.push(Box::new(Spsa::default()));
    v
}
