use crate::{
    gradient, Bounds, Counted, FnObjective, Objective, OptimizeError, OptimizeResult, Optimizer,
    Options, Termination,
};

/// Sequential quadratic programming for box constraints — the workspace's
/// SLSQP.
///
/// Kraft's SLSQP solves a least-squares QP with general constraints at every
/// step. The paper's problems carry **only box constraints**, for which the
/// QP subproblem
///
/// ```text
/// min_d  ½ dᵀB d + gᵀd   s.t.  l ≤ x + d ≤ u
/// ```
///
/// is solved exactly here by a primal active-set method (`solve_box_qp`),
/// with `B` maintained as a damped-BFGS approximation (Powell's damping, the
/// same safeguard Kraft uses). A backtracking Armijo line search globalizes
/// the step. Behaviour on this problem class matches SciPy's SLSQP: fast
/// quadratic local convergence, bound-respecting iterates, forward-difference
/// gradients counted as function calls.
///
/// # Example
///
/// ```
/// use optimize::{Bounds, Optimizer, Options, Slsqp};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let f = |x: &[f64]| (x[0] + 2.0_f64).powi(2) + (x[1] - 0.5_f64).powi(2);
/// let bounds = Bounds::uniform(2, 0.0, 1.0)?;
/// let r = Slsqp::default().minimize(&f, &[0.9, 0.9], &bounds, &Options::default())?;
/// // x0 is pinned to its lower bound, x1 is interior.
/// assert!(r.x[0].abs() < 1e-6 && (r.x[1] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slsqp {
    /// Armijo sufficient-decrease constant.
    pub armijo_c1: f64,
    /// Backtracking factor.
    pub backtrack: f64,
    /// Maximum line-search evaluations per iteration.
    pub max_line_steps: usize,
}

impl Default for Slsqp {
    fn default() -> Self {
        Self {
            armijo_c1: 1e-4,
            backtrack: 0.5,
            max_line_steps: 20,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dense symmetric matrix in a flat buffer (row-major), n ≤ ~12 here.
#[derive(Debug, Clone)]
struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    fn identity(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self { n, data }
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|i| dot(&self.data[i * self.n..(i + 1) * self.n], x))
            .collect()
    }

    /// Rank-one update `B += c · v vᵀ`.
    fn rank_one(&mut self, c: f64, v: &[f64]) {
        for i in 0..self.n {
            for j in 0..self.n {
                self.data[i * self.n + j] += c * v[i] * v[j];
            }
        }
    }

    /// Solves `B_free d = -g_free` on the free coordinates by Gaussian
    /// elimination with partial pivoting; returns `None` on singularity.
    fn solve_free(&self, g: &[f64], free: &[usize]) -> Option<Vec<f64>> {
        let m = free.len();
        let mut a = vec![0.0; m * m];
        let mut b = vec![0.0; m];
        for (r, &i) in free.iter().enumerate() {
            for (c, &j) in free.iter().enumerate() {
                a[r * m + c] = self.get(i, j);
            }
            b[r] = -g[i];
        }
        // In-place Gaussian elimination.
        for k in 0..m {
            let mut piv = k;
            for r in (k + 1)..m {
                if a[r * m + k].abs() > a[piv * m + k].abs() {
                    piv = r;
                }
            }
            if a[piv * m + k].abs() < 1e-12 {
                return None;
            }
            if piv != k {
                for c in 0..m {
                    a.swap(k * m + c, piv * m + c);
                }
                b.swap(k, piv);
            }
            for r in (k + 1)..m {
                let factor = a[r * m + k] / a[k * m + k];
                for c in k..m {
                    a[r * m + c] -= factor * a[k * m + c];
                }
                b[r] -= factor * b[k];
            }
        }
        for k in (0..m).rev() {
            let mut s = b[k];
            for c in (k + 1)..m {
                s -= a[k * m + c] * b[c];
            }
            b[k] = s / a[k * m + k];
        }
        Some(b)
    }
}

/// Exact primal active-set solver for `min ½dᵀBd + gᵀd, l ≤ x+d ≤ u`.
///
/// Starts with all coordinates free; whenever the unconstrained step of the
/// free subsystem leaves the box, the step is truncated at the first blocking
/// bound, that coordinate joins the active set, and the subsystem is
/// re-solved. Terminates in at most `n` outer rounds.
fn solve_box_qp(b_mat: &SymMatrix, g: &[f64], x: &[f64], bounds: &Bounds) -> Vec<f64> {
    let n = g.len();
    let mut d = vec![0.0; n];
    let mut active = vec![false; n];

    // Coordinates already pinned at a bound with the gradient pushing
    // outward stay active from the start.
    for i in 0..n {
        let at_lower = x[i] <= bounds.lower()[i] + 1e-14 && g[i] > 0.0;
        let at_upper = x[i] >= bounds.upper()[i] - 1e-14 && g[i] < 0.0;
        if at_lower || at_upper {
            active[i] = true;
        }
    }

    for _round in 0..n {
        let free: Vec<usize> = (0..n).filter(|&i| !active[i]).collect();
        if free.is_empty() {
            break;
        }
        // Gradient of the quadratic model at current d, restricted to free.
        let bd = b_mat.matvec(&d);
        let model_grad: Vec<f64> = (0..n).map(|i| g[i] + bd[i]).collect();
        let Some(step_free) = b_mat.solve_free(&model_grad, &free) else {
            // Singular reduced Hessian: fall back to a steepest-descent step.
            for (k, &i) in free.iter().enumerate() {
                let _ = k;
                d[i] -= model_grad[i];
            }
            // Clamp into the box and stop refining.
            for i in 0..n {
                d[i] = d[i].clamp(bounds.lower()[i] - x[i], bounds.upper()[i] - x[i]);
            }
            break;
        };

        // Longest feasible prefix of the proposed free-space step.
        let mut t_max = 1.0_f64;
        let mut blocker: Option<usize> = None;
        for (k, &i) in free.iter().enumerate() {
            let target = d[i] + step_free[k];
            let lo = bounds.lower()[i] - x[i];
            let hi = bounds.upper()[i] - x[i];
            if target < lo || target > hi {
                let bound = if target < lo { lo } else { hi };
                let t = if step_free[k].abs() < 1e-300 {
                    0.0
                } else {
                    (bound - d[i]) / step_free[k]
                };
                if t < t_max {
                    t_max = t.max(0.0);
                    blocker = Some(i);
                }
            }
        }
        for (k, &i) in free.iter().enumerate() {
            d[i] += t_max * step_free[k];
        }
        match blocker {
            Some(i) => active[i] = true,
            None => break, // full Newton step was feasible: done
        }
    }
    // Numerical safety: keep x + d strictly inside the box.
    for i in 0..n {
        d[i] = d[i].clamp(bounds.lower()[i] - x[i], bounds.upper()[i] - x[i]);
    }
    d
}

impl Optimizer for Slsqp {
    fn minimize(
        &self,
        f: &dyn Fn(&[f64]) -> f64,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        self.minimize_objective(&FnObjective(f), x0, bounds, options)
    }

    fn minimize_objective(
        &self,
        f: &dyn Objective,
        x0: &[f64],
        bounds: &Bounds,
        options: &Options,
    ) -> Result<OptimizeResult, OptimizeError> {
        if x0.is_empty() {
            return Err(OptimizeError::EmptyProblem);
        }
        if x0.len() != bounds.dim() {
            return Err(OptimizeError::DimensionMismatch {
                x0: x0.len(),
                bounds: bounds.dim(),
            });
        }
        let n = x0.len();
        let counted = Counted::new(f);
        let mut x = bounds.project(x0);
        let mut fx = counted.eval(&x);
        if !fx.is_finite() {
            return Err(OptimizeError::NonFiniteObjective { value: fx });
        }
        let mut grad = gradient(&counted, &x, fx, bounds, options.fd_step);
        let mut b_mat = SymMatrix::identity(n);

        let mut termination = Termination::MaxIterations;
        let mut iters = 0;
        // One Hessian reset is allowed when the line search fails with a
        // stale BFGS model (standard quasi-Newton restart); a second failure
        // terminates.
        let mut hessian_is_fresh = true;

        for iter in 0..options.max_iters {
            iters = iter + 1;
            if options.calls_exhausted(counted.count()) {
                termination = Termination::MaxCalls;
                break;
            }
            let d = solve_box_qp(&b_mat, &grad, &x, bounds);
            let d_norm = d.iter().map(|v| v.abs()).fold(0.0_f64, f64::max);
            if d_norm <= options.gtol {
                termination = Termination::GtolSatisfied;
                break;
            }

            // Armijo backtracking along d (already feasible end point).
            let gd = dot(&grad, &d);
            let mut alpha = 1.0_f64;
            let mut accepted = false;
            let mut x_new = x.clone();
            let mut f_new = fx;
            for _ in 0..self.max_line_steps {
                let trial: Vec<f64> = x.iter().zip(&d).map(|(&xi, &di)| xi + alpha * di).collect();
                let trial = bounds.project(&trial);
                let ft = counted.eval(&trial);
                if ft.is_finite() && ft <= fx + self.armijo_c1 * alpha * gd {
                    x_new = trial;
                    f_new = ft;
                    accepted = true;
                    break;
                }
                alpha *= self.backtrack;
                if options.calls_exhausted(counted.count()) {
                    break;
                }
            }
            if !accepted {
                if !hessian_is_fresh {
                    // Retry once from a steepest-descent model.
                    b_mat = SymMatrix::identity(n);
                    hessian_is_fresh = true;
                    continue;
                }
                termination = Termination::StepSizeZero;
                break;
            }

            let grad_new = gradient(&counted, &x_new, f_new, bounds, options.fd_step);

            // Damped BFGS (Powell): keep B positive definite even when the
            // curvature condition fails.
            let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
            let y: Vec<f64> = grad_new.iter().zip(&grad).map(|(a, b)| a - b).collect();
            let bs = b_mat.matvec(&s);
            let sbs = dot(&s, &bs);
            let sy = dot(&s, &y);
            if sbs > 1e-300 {
                let theta = if sy >= 0.2 * sbs {
                    1.0
                } else {
                    0.8 * sbs / (sbs - sy)
                };
                let r: Vec<f64> = y
                    .iter()
                    .zip(&bs)
                    .map(|(&yi, &bsi)| theta * yi + (1.0 - theta) * bsi)
                    .collect();
                let sr = dot(&s, &r);
                if sr > 1e-300 {
                    b_mat.rank_one(-1.0 / sbs, &bs);
                    b_mat.rank_one(1.0 / sr, &r);
                    hessian_is_fresh = false;
                }
            }

            let converged = options.f_converged(fx, f_new);
            x = x_new;
            fx = f_new;
            grad = grad_new;
            if converged {
                termination = Termination::FtolSatisfied;
                break;
            }
        }

        Ok(OptimizeResult {
            x,
            fx,
            n_calls: counted.count(),
            n_grad_calls: counted.njev(),
            n_iters: iters,
            termination,
        })
    }

    fn name(&self) -> &'static str {
        "SLSQP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn interior_minimum() {
        let f = |x: &[f64]| (x[0] - 0.3_f64).powi(2) + 2.0 * (x[1] - 0.6_f64).powi(2);
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let r = Slsqp::default()
            .minimize(&f, &[0.9, 0.1], &b, &Options::default())
            .unwrap();
        assert!((r.x[0] - 0.3).abs() < 1e-5, "{r}");
        assert!((r.x[1] - 0.6).abs() < 1e-5, "{r}");
    }

    #[test]
    fn bound_constrained_minimum() {
        // Unconstrained min at (-2, 3): both coordinates pinned.
        let f = |x: &[f64]| (x[0] + 2.0_f64).powi(2) + (x[1] - 3.0_f64).powi(2);
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let r = Slsqp::default()
            .minimize(&f, &[0.5, 0.5], &b, &Options::default())
            .unwrap();
        assert!(r.x[0].abs() < 1e-6, "{r}");
        assert!((r.x[1] - 1.0).abs() < 1e-6, "{r}");
    }

    #[test]
    fn rosenbrock() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let b = Bounds::uniform(2, -5.0, 5.0).unwrap();
        let r = Slsqp::default()
            .minimize(
                &f,
                &[-1.0, 2.0],
                &b,
                &Options::default().with_max_iters(500),
            )
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{r}");
    }

    #[test]
    fn box_qp_exact_on_quadratic() {
        // B = I, g = (2, -2), x = (0.5, 0.5), box [0,1]: d = (-0.5, 0.5).
        let b_mat = SymMatrix::identity(2);
        let bounds = Bounds::uniform(2, 0.0, 1.0).unwrap();
        let d = solve_box_qp(&b_mat, &[2.0, -2.0], &[0.5, 0.5], &bounds);
        assert!((d[0] + 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn box_qp_respects_prepinned_bounds() {
        let b_mat = SymMatrix::identity(2);
        let bounds = Bounds::uniform(2, 0.0, 1.0).unwrap();
        // At lower bound with positive gradient: stay pinned.
        let d = solve_box_qp(&b_mat, &[5.0, 0.0], &[0.0, 0.5], &bounds);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn counts_calls() {
        let b = Bounds::uniform(3, -1.0, 1.0).unwrap();
        let r = Slsqp::default()
            .minimize(&sphere, &[0.9, -0.9, 0.4], &b, &Options::default())
            .unwrap();
        assert!(r.n_calls > 3); // initial eval + first gradient
        assert!(r.converged());
    }

    #[test]
    fn error_paths() {
        let b = Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert!(Slsqp::default()
            .minimize(&sphere, &[0.1], &b, &Options::default())
            .is_err());
        let inf = |_: &[f64]| f64::INFINITY;
        assert!(Slsqp::default()
            .minimize(&inf, &[0.5, 0.5], &b, &Options::default())
            .is_err());
    }
}
