//! Finite-difference gradient estimation.
//!
//! SciPy's L-BFGS-B and SLSQP estimate gradients by forward differences when
//! no analytic gradient is supplied — which is exactly the paper's setup (the
//! QAOA expectation has no cheap analytic gradient on hardware). Each probe
//! is a full objective evaluation and therefore counts toward the "function
//! call" metric; both helpers here take the [`Counted`] wrapper to enforce
//! that.
//!
//! Probes respect the box: near an upper bound the forward probe flips to a
//! backward probe (mirroring SciPy's bounded `approx_derivative`).

use crate::{Bounds, Counted};

/// Forward-difference gradient `(f(x + h eᵢ) − f(x)) / h` with bound-aware
/// probe directions. `fx` must be `f(x)` (already evaluated, not recounted).
///
/// Cost: `n` objective evaluations.
///
/// # Example
///
/// ```
/// use optimize::{forward_difference, Bounds, Counted};
/// # fn main() -> Result<(), optimize::OptimizeError> {
/// let f = |x: &[f64]| x[0] * x[0];
/// let counted = Counted::new(&f);
/// let bounds = Bounds::uniform(1, -10.0, 10.0)?;
/// let g = forward_difference(&counted, &[3.0], 9.0, &bounds, 1e-7);
/// assert!((g[0] - 6.0).abs() < 1e-4);
/// assert_eq!(counted.count(), 1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn forward_difference(
    f: &Counted<'_>,
    x: &[f64],
    fx: f64,
    bounds: &Bounds,
    rel_step: f64,
) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    forward_difference_into(f, x, fx, bounds, rel_step, &mut grad);
    grad
}

/// [`forward_difference`] writing into a caller-supplied buffer (used by
/// [`gradient`] to reuse its allocation on the fallback path).
fn forward_difference_into(
    f: &Counted<'_>,
    x: &[f64],
    fx: f64,
    bounds: &Bounds,
    rel_step: f64,
    grad: &mut [f64],
) {
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        let h = step_size(x[i], rel_step);
        // Flip direction if a forward probe would leave the box.
        let (hi, sign) = if x[i] + h <= bounds.upper()[i] {
            (h, 1.0)
        } else {
            (-h, -1.0)
        };
        probe[i] = x[i] + hi;
        let fp = f.eval(&probe);
        grad[i] = sign * (fp - fx) / h;
        probe[i] = x[i];
    }
}

/// Central-difference gradient `(f(x + h eᵢ) − f(x − h eᵢ)) / 2h`, clamping
/// probes into the box (falling back to a one-sided probe at a bound).
///
/// Cost: `2n` objective evaluations. More accurate than
/// [`forward_difference`] but twice the price; used by tests and available
/// to callers that want tighter gradients.
#[must_use]
pub fn central_difference(f: &Counted<'_>, x: &[f64], bounds: &Bounds, rel_step: f64) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        let h = step_size(x[i], rel_step.sqrt().max(rel_step));
        let up = (x[i] + h).min(bounds.upper()[i]);
        let dn = (x[i] - h).max(bounds.lower()[i]);
        let span = up - dn;
        if span <= 0.0 {
            grad[i] = 0.0; // degenerate interval: gradient unobservable
            continue;
        }
        probe[i] = up;
        let fu = f.eval(&probe);
        probe[i] = dn;
        let fd = f.eval(&probe);
        grad[i] = (fu - fd) / span;
        probe[i] = x[i];
    }
    grad
}

/// SciPy-style step: `rel_step * max(1, |x|)`, never denormal.
fn step_size(x: f64, rel_step: f64) -> f64 {
    (rel_step * x.abs().max(1.0)).max(f64::EPSILON.sqrt() * 1e-2)
}

/// The gradient of a [`Counted`] objective at `(x, fx)`: the objective's
/// analytic gradient when it provides one (one `njev`), otherwise
/// bound-aware forward differences (`n` counted objective evaluations).
///
/// This is the single gradient entry point of the gradient-based
/// optimizers (`Lbfgsb`, `Slsqp`); it is what makes an
/// [`Objective`](crate::Objective) with `value_and_grad` cut their `nfev`.
#[must_use]
pub fn gradient(f: &Counted<'_>, x: &[f64], fx: f64, bounds: &Bounds, rel_step: f64) -> Vec<f64> {
    let mut grad = vec![0.0; x.len()];
    if f.eval_grad(x, &mut grad).is_none() {
        forward_difference_into(f, x, fx, bounds, rel_step, &mut grad);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(x: &[f64]) -> f64 {
        x.iter()
            .enumerate()
            .map(|(i, &v)| (i + 1) as f64 * v * v)
            .sum()
    }

    #[test]
    fn forward_matches_analytic() {
        let f = |x: &[f64]| quad(x);
        let c = Counted::new(&f);
        let b = Bounds::uniform(3, -10.0, 10.0).unwrap();
        let x = [1.0, -2.0, 0.5];
        let fx = quad(&x);
        let g = forward_difference(&c, &x, fx, &b, 1e-7);
        let exact = [2.0, -8.0, 3.0];
        for (gi, ei) in g.iter().zip(exact) {
            assert!((gi - ei).abs() < 1e-4, "{gi} vs {ei}");
        }
        assert_eq!(c.count(), 3); // exactly n probes
    }

    #[test]
    fn central_matches_analytic_tighter() {
        let f = |x: &[f64]| quad(x);
        let c = Counted::new(&f);
        let b = Bounds::uniform(2, -10.0, 10.0).unwrap();
        let x = [3.0, -1.0];
        let g = central_difference(&c, &x, &b, 1e-7);
        assert!((g[0] - 6.0).abs() < 1e-6);
        assert!((g[1] + 4.0).abs() < 1e-6);
        assert_eq!(c.count(), 4); // exactly 2n probes
    }

    #[test]
    fn forward_respects_upper_bound() {
        // x at the upper bound: probe must go backward, never outside.
        let f = |x: &[f64]| {
            assert!(x[0] <= 1.0 + 1e-15, "probe escaped the box: {}", x[0]);
            (x[0] - 2.0) * (x[0] - 2.0)
        };
        let c = Counted::new(&f);
        let b = Bounds::uniform(1, 0.0, 1.0).unwrap();
        let g = forward_difference(&c, &[1.0], 1.0, &b, 1e-7);
        assert!((g[0] + 2.0).abs() < 1e-4); // d/dx (x-2)^2 at 1 = -2
    }

    #[test]
    fn central_handles_degenerate_interval() {
        let f = |x: &[f64]| x[0];
        let c = Counted::new(&f);
        let b = Bounds::new(vec![2.0], vec![2.0]).unwrap();
        let g = central_difference(&c, &[2.0], &b, 1e-7);
        assert_eq!(g[0], 0.0);
        assert_eq!(c.count(), 0);
    }
}
