use std::fmt;

/// Why an optimization run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Termination {
    /// Successive objective values differed by less than `ftol`.
    FtolSatisfied,
    /// The (projected) gradient norm fell below `gtol`.
    GtolSatisfied,
    /// The simplex / trust region collapsed below resolution.
    StepSizeZero,
    /// The iteration cap was hit before convergence.
    MaxIterations,
    /// The evaluation cap was hit before convergence.
    MaxCalls,
    /// The objective produced a non-finite value mid-run; the best finite
    /// iterate is returned.
    NonFinite,
}

impl Termination {
    /// `true` for terminations that indicate convergence rather than a
    /// budget or numerical failure.
    #[must_use]
    pub fn is_converged(self) -> bool {
        matches!(
            self,
            Termination::FtolSatisfied | Termination::GtolSatisfied | Termination::StepSizeZero
        )
    }
}

impl Termination {
    /// A stable, space-free token naming this variant, identical across
    /// processes and releases — the form used by on-disk caches and wire
    /// encodings. Round-trips through [`Termination::from_token`].
    #[must_use]
    pub fn as_token(self) -> &'static str {
        match self {
            Termination::FtolSatisfied => "ftol",
            Termination::GtolSatisfied => "gtol",
            Termination::StepSizeZero => "step-zero",
            Termination::MaxIterations => "max-iter",
            Termination::MaxCalls => "max-calls",
            Termination::NonFinite => "non-finite",
        }
    }

    /// Inverse of [`Termination::as_token`]; `None` for unknown tokens.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        Some(match token {
            "ftol" => Termination::FtolSatisfied,
            "gtol" => Termination::GtolSatisfied,
            "step-zero" => Termination::StepSizeZero,
            "max-iter" => Termination::MaxIterations,
            "max-calls" => Termination::MaxCalls,
            "non-finite" => Termination::NonFinite,
            _ => return None,
        })
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Termination::FtolSatisfied => "ftol satisfied",
            Termination::GtolSatisfied => "gtol satisfied",
            Termination::StepSizeZero => "step size collapsed",
            Termination::MaxIterations => "maximum iterations reached",
            Termination::MaxCalls => "maximum function calls reached",
            Termination::NonFinite => "objective became non-finite",
        };
        f.write_str(s)
    }
}

/// Outcome of a single local-optimization run.
///
/// `n_calls` is the paper's cost metric (loop iterations / QC calls): the
/// total number of objective evaluations, finite-difference gradient probes
/// included. When the objective supplies an analytic gradient
/// (see [`Objective`](crate::Objective)), gradient evaluations are counted
/// separately in `n_grad_calls` — SciPy's `nfev`/`njev` split.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// The best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Total objective evaluations consumed (`nfev`).
    pub n_calls: usize,
    /// Analytic gradient evaluations consumed (`njev`; 0 when gradients
    /// were estimated by finite differences, whose probes count in
    /// `n_calls` instead).
    pub n_grad_calls: usize,
    /// Outer iterations performed.
    pub n_iters: usize,
    /// Why the run stopped.
    pub termination: Termination,
}

impl OptimizeResult {
    /// `true` if the run stopped because a convergence test fired.
    #[must_use]
    pub fn converged(&self) -> bool {
        self.termination.is_converged()
    }
}

impl fmt::Display for OptimizeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f = {:.6e} after {} calls / {} iters ({})",
            self.fx, self.n_calls, self.n_iters, self.termination
        )?;
        if self.n_grad_calls > 0 {
            write!(f, " [{} grad calls]", self.n_grad_calls)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_classification() {
        assert!(Termination::FtolSatisfied.is_converged());
        assert!(Termination::GtolSatisfied.is_converged());
        assert!(Termination::StepSizeZero.is_converged());
        assert!(!Termination::MaxIterations.is_converged());
        assert!(!Termination::MaxCalls.is_converged());
        assert!(!Termination::NonFinite.is_converged());
    }

    #[test]
    fn display_result() {
        let r = OptimizeResult {
            x: vec![1.0],
            fx: 0.5,
            n_calls: 10,
            n_grad_calls: 0,
            n_iters: 3,
            termination: Termination::FtolSatisfied,
        };
        let s = r.to_string();
        assert!(s.contains("10 calls"));
        assert!(s.contains("ftol satisfied"));
        assert!(!s.contains("grad calls"));
        assert!(r.converged());
        let with_grad = OptimizeResult {
            n_grad_calls: 4,
            ..r
        };
        assert!(with_grad.to_string().contains("[4 grad calls]"));
    }

    #[test]
    fn termination_tokens_round_trip() {
        let all = [
            Termination::FtolSatisfied,
            Termination::GtolSatisfied,
            Termination::StepSizeZero,
            Termination::MaxIterations,
            Termination::MaxCalls,
            Termination::NonFinite,
        ];
        for t in all {
            let token = t.as_token();
            assert!(!token.contains(' '), "tokens must be space-free: {token}");
            assert_eq!(Termination::from_token(token), Some(t));
        }
        assert_eq!(Termination::from_token("bogus"), None);
    }
}
