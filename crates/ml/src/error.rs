use std::error::Error;
use std::fmt;

use linalg::LinalgError;

/// Error type for model fitting and prediction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// Feature matrix and target vector disagree on the sample count, or a
    /// prediction input has the wrong number of features.
    ShapeMismatch {
        /// What was expected.
        expected: usize,
        /// What was supplied.
        actual: usize,
        /// Which quantity disagreed ("samples", "features", ...).
        what: &'static str,
    },
    /// `fit` was given zero training rows.
    EmptyTrainingSet,
    /// `predict` called before a successful `fit`.
    NotFitted,
    /// A numerical subroutine failed (e.g. a Gram matrix that stayed
    /// non-positive-definite after jitter).
    Numerical {
        /// Description of the failing computation.
        context: &'static str,
    },
    /// An invalid hyperparameter (non-positive length scale, negative C, …).
    InvalidHyperparameter {
        /// The hyperparameter name.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch {
                expected,
                actual,
                what,
            } => write!(f, "expected {expected} {what}, got {actual}"),
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::NotFitted => write!(f, "model used before fitting"),
            MlError::Numerical { context } => write!(f, "numerical failure in {context}"),
            MlError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyperparameter {name} = {value}")
            }
        }
    }
}

impl Error for MlError {}

impl From<LinalgError> for MlError {
    fn from(_: LinalgError) -> Self {
        MlError::Numerical {
            context: "linear algebra kernel",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            MlError::ShapeMismatch {
                expected: 3,
                actual: 2,
                what: "features"
            }
            .to_string(),
            "expected 3 features, got 2"
        );
        assert!(MlError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(MlError::NotFitted.to_string().contains("before fitting"));
        assert!(MlError::Numerical {
            context: "cholesky"
        }
        .to_string()
        .contains("cholesky"));
        assert!(MlError::InvalidHyperparameter {
            name: "length_scale",
            value: -1.0
        }
        .to_string()
        .contains("length_scale"));
    }

    #[test]
    fn from_linalg() {
        let e: MlError = LinalgError::Empty.into();
        assert!(matches!(e, MlError::Numerical { .. }));
    }
}
