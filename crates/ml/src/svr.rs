use linalg::Matrix;

use crate::convert::count_f64;
use crate::params::ParamReader;
use crate::{MlError, ModelParams, RbfKernel, Regressor, StandardScaler};

/// ε-support-vector regression — the paper's `RSVM` baseline.
///
/// Solves the standard SVR dual
///
/// ```text
/// max_β  −½ βᵀKβ + yᵀβ − ε Σ|βᵢ|    s.t.  Σβᵢ = 0,  |βᵢ| ≤ C
/// ```
///
/// with an SMO-style pairwise coordinate ascent: each update picks a pair
/// `(i, j)`, moves `βᵢ += δ, βⱼ −= δ` (preserving the equality constraint)
/// to the exact maximizer of the piecewise-quadratic restriction, and keeps
/// a cached `Kβ` for O(n) updates. Inputs are standardized and the kernel is
/// RBF, mirroring MATLAB `fitrsvm(..., 'Standardize', true,
/// 'KernelFunction', 'gaussian')`. Defaults for `C` and `ε` are scaled from
/// the target spread, as MATLAB does (`iqr(Y)/13.49`-style heuristics).
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{Regressor, SvrModel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.3]).collect();
/// let x = Matrix::from_rows(&xs)?;
/// let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).sin()).collect();
/// let mut svr = SvrModel::default();
/// svr.fit(&x, &y)?;
/// assert!((svr.predict(&[1.5])? - 1.5_f64.sin()).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SvrModel {
    /// Box constraint `C` (`None` = auto-scale from target spread).
    pub c: Option<f64>,
    /// Tube half-width ε (`None` = auto-scale from target spread).
    pub epsilon: Option<f64>,
    /// RBF length scale on standardized features.
    pub length_scale: f64,
    /// Maximum optimization epochs (full pair sweeps).
    pub max_epochs: usize,
    /// Stop when the best dual improvement in an epoch drops below this.
    pub tol: f64,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: StandardScaler,
    kernel: RbfKernel,
    support_x: Matrix,
    support_beta: Vec<f64>,
    bias: f64,
}

impl Default for SvrModel {
    fn default() -> Self {
        Self {
            c: None,
            epsilon: None,
            length_scale: 1.0,
            max_epochs: 60,
            tol: 1e-8,
            state: None,
        }
    }
}

impl SvrModel {
    /// Creates a model with explicit `C` and ε (no auto-scaling).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for non-positive `C` or
    /// negative ε.
    pub fn with_params(c: f64, epsilon: f64, length_scale: f64) -> Result<Self, MlError> {
        if !(c.is_finite() && c > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "c",
                value: c,
            });
        }
        if !(epsilon.is_finite() && epsilon >= 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "epsilon",
                value: epsilon,
            });
        }
        RbfKernel::new(length_scale, 1.0)?;
        Ok(Self {
            c: Some(c),
            epsilon: Some(epsilon),
            length_scale,
            ..Self::default()
        })
    }

    /// Number of support vectors (`|βᵢ| > 0`) after fitting; 0 before.
    #[must_use]
    pub fn n_support_vectors(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.support_beta.len())
    }

    /// Rebuilds a fitted model from exported parameters.
    ///
    /// Layout: ints = `[n_support, cols]`; floats = `[length_scale,
    /// signal_variance, bias]` followed by the scaler means (`cols`), scaler
    /// scales (`cols`), standardized support vectors in row-major order
    /// (`n_support·cols`), and the dual coefficients β (`n_support`). The
    /// training-time hyperparameters `C`/ε/`max_epochs`/`tol` are fit-time
    /// configuration and are restored to defaults.
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let n_support = r.count()?;
        let cols = r.count()?;
        let length_scale = r.float()?;
        let signal_variance = r.float()?;
        let bias = r.float()?;
        let kernel = RbfKernel::from_parts(length_scale, signal_variance)?;
        let scaler =
            StandardScaler::from_parts(r.floats(cols)?.to_vec(), r.floats(cols)?.to_vec())?;
        let cells = n_support.checked_mul(cols).ok_or(MlError::Numerical {
            context: "model params: SVR shape overflow",
        })?;
        let xdata = r.floats(cells)?;
        let support_x = Matrix::from_fn(n_support, cols, |i, j| xdata[i * cols + j]);
        let support_beta = r.floats(n_support)?.to_vec();
        r.finish()?;
        Ok(Self {
            length_scale,
            state: Some(Fitted {
                scaler,
                kernel,
                support_x,
                support_beta,
                bias,
            }),
            ..Self::default()
        })
    }
}

/// Exact maximizer of the pairwise dual restriction.
///
/// `r` is the smooth-part derivative at δ = 0, `eta` the curvature,
/// `(bi, bj)` the current pair values, `(lo, hi)` the feasible δ interval.
/// Returns `(δ, ΔW)` for the best candidate.
fn best_pair_step(r: f64, eta: f64, bi: f64, bj: f64, eps: f64, lo: f64, hi: f64) -> (f64, f64) {
    let delta_w = |d: f64| -> f64 {
        d * r
            - 0.5 * d * d * eta
            - eps * ((bi + d).abs() - bi.abs())
            - eps * ((bj - d).abs() - bj.abs())
    };
    let mut candidates = [0.0_f64; 9];
    let mut n = 0;
    // Stationary points inside each sign region of (βi + δ, βj − δ).
    if eta > 1e-300 {
        for si in [-1.0, 1.0] {
            for sj in [-1.0, 1.0] {
                candidates[n] = (r - eps * (si - sj)) / eta;
                n += 1;
            }
        }
    }
    // Kinks where a coefficient crosses zero, plus the interval ends.
    candidates[n] = -bi;
    candidates[n + 1] = bj;
    candidates[n + 2] = lo;
    candidates[n + 3] = hi;
    n += 4;

    let mut best = (0.0, 0.0);
    for &cand in &candidates[..n] {
        let d = cand.clamp(lo, hi);
        let w = delta_w(d);
        if w > best.1 {
            best = (d, w);
        }
    }
    best
}

impl Regressor for SvrModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        let n = x.rows();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x)?;
        let kernel = RbfKernel::new(self.length_scale, 1.0)?;
        let gram = kernel.gram(&xs);

        // MATLAB-style spread heuristics for unset hyperparameters.
        let spread = crate::metrics::std_dev(y).max(1e-6);
        let c = self.c.unwrap_or(10.0 * spread.max(0.1));
        let eps = self.epsilon.unwrap_or(spread / 10.0);

        let mut beta = vec![0.0_f64; n];
        let mut k_beta = vec![0.0_f64; n]; // cached K β

        for _epoch in 0..self.max_epochs {
            let mut best_epoch_gain = 0.0_f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let eta = gram.get(i, i) + gram.get(j, j) - 2.0 * gram.get(i, j);
                    if eta <= 1e-12 {
                        continue;
                    }
                    let r = (y[i] - k_beta[i]) - (y[j] - k_beta[j]);
                    let lo = (-c - beta[i]).max(beta[j] - c);
                    let hi = (c - beta[i]).min(beta[j] + c);
                    if lo >= hi {
                        continue;
                    }
                    let (delta, gain) = best_pair_step(r, eta, beta[i], beta[j], eps, lo, hi);
                    if gain <= self.tol || delta == 0.0 {
                        continue;
                    }
                    beta[i] += delta;
                    beta[j] -= delta;
                    for (t, kb) in k_beta.iter_mut().enumerate() {
                        *kb += delta * (gram.get(t, i) - gram.get(t, j));
                    }
                    best_epoch_gain = best_epoch_gain.max(gain);
                }
            }
            if best_epoch_gain <= self.tol {
                break;
            }
        }

        // Bias from free support vectors' KKT conditions.
        let mut bias_sum = 0.0;
        let mut bias_count = 0usize;
        for i in 0..n {
            let b_abs = beta[i].abs();
            if b_abs > 1e-8 && b_abs < c - 1e-8 {
                bias_sum += y[i] - k_beta[i] - eps * beta[i].signum();
                bias_count += 1;
            }
        }
        let bias = if bias_count > 0 {
            bias_sum / count_f64(bias_count)
        } else {
            // No free SVs (e.g. a constant target inside the ε-tube):
            // center predictions on the mean residual.
            let resid: f64 = (0..n).map(|i| y[i] - k_beta[i]).sum();
            resid / count_f64(n)
        };

        // Keep only the support vectors for prediction.
        let support: Vec<usize> = (0..n).filter(|&i| beta[i].abs() > 1e-10).collect();
        let support_x = if support.is_empty() {
            Matrix::zeros(0, xs.cols())
        } else {
            Matrix::from_fn(support.len(), xs.cols(), |r, c2| xs.get(support[r], c2))
        };
        let support_beta: Vec<f64> = support.iter().map(|&i| beta[i]).collect();

        self.state = Some(Fitted {
            scaler,
            kernel,
            support_x,
            support_beta,
            bias,
        });
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        let z = st.scaler.transform_row(x)?;
        let mut out = st.bias;
        for (r, &b) in st.support_beta.iter().enumerate() {
            out += b * st.kernel.eval(st.support_x.row(r), &z);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "RSVM"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        let mut p = ModelParams::new();
        p.push_count(st.support_x.rows());
        p.push_count(st.support_x.cols());
        p.floats.push(st.kernel.length_scale());
        p.floats.push(st.kernel.signal_variance());
        p.floats.push(st.bias);
        p.floats.extend_from_slice(st.scaler.means());
        p.floats.extend_from_slice(st.scaler.scales());
        for i in 0..st.support_x.rows() {
            p.floats.extend_from_slice(st.support_x.row(i));
        }
        p.floats.extend_from_slice(&st.support_beta);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_linear_trend() {
        let rows: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..15).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut svr = SvrModel::default();
        svr.fit(&x, &y).unwrap();
        for (i, &target) in y.iter().enumerate() {
            let p = svr.predict(&[i as f64]).unwrap();
            assert!((p - target).abs() < 2.0, "at {i}: {p} vs {target}");
        }
        assert!(svr.n_support_vectors() > 0);
    }

    #[test]
    fn constant_target_within_tube() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [5.0; 4];
        let mut svr = SvrModel::with_params(1.0, 0.5, 1.0).unwrap();
        svr.fit(&x, &y).unwrap();
        // All targets inside the tube: β = 0, bias carries the prediction.
        assert_eq!(svr.n_support_vectors(), 0);
        assert!((svr.predict(&[1.5]).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dual_feasibility_invariants() {
        // After fitting, Σβ = 0 and |β| ≤ C must hold.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64 * 0.7).sin(), i as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.5).cos()).collect();
        let c = 2.0;
        let mut svr = SvrModel::with_params(c, 0.01, 1.0).unwrap();
        svr.fit(&x, &y).unwrap();
        let st = svr.state.as_ref().unwrap();
        let sum: f64 = st.support_beta.iter().sum();
        assert!(sum.abs() < 1e-9, "sum β = {sum}");
        assert!(st.support_beta.iter().all(|b| b.abs() <= c + 1e-9));
    }

    #[test]
    fn tight_epsilon_interpolates_better() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..10).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut tight = SvrModel::with_params(10.0, 0.01, 1.0).unwrap();
        tight.fit(&x, &y).unwrap();
        let mut loose = SvrModel::with_params(10.0, 0.5, 1.0).unwrap();
        loose.fit(&x, &y).unwrap();
        let tight_preds = tight.predict_batch(&x).unwrap();
        let loose_preds = loose.predict_batch(&x).unwrap();
        let mse_tight = crate::metrics::mse(&y, &tight_preds).unwrap();
        let mse_loose = crate::metrics::mse(&y, &loose_preds).unwrap();
        assert!(mse_tight < mse_loose);
        assert!(mse_tight < 0.01, "{mse_tight}");
    }

    #[test]
    fn hyperparameter_validation() {
        assert!(SvrModel::with_params(0.0, 0.1, 1.0).is_err());
        assert!(SvrModel::with_params(1.0, -0.1, 1.0).is_err());
        assert!(SvrModel::with_params(1.0, 0.1, 0.0).is_err());
    }

    #[test]
    fn error_paths() {
        let svr = SvrModel::default();
        assert!(matches!(svr.predict(&[0.0]), Err(MlError::NotFitted)));
        let mut svr = SvrModel::default();
        let x = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(svr.fit(&x, &[1.0, 2.0]).is_err());
        svr.fit(&x, &[1.0]).unwrap();
        assert!(svr.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pair_step_zero_when_optimal() {
        // r = 0, both at zero: no move should be proposed.
        let (d, w) = best_pair_step(0.0, 2.0, 0.0, 0.0, 0.1, -1.0, 1.0);
        assert_eq!(d, 0.0);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn pair_step_improves_dual() {
        // Strong residual difference drives a positive-gain step.
        let (d, w) = best_pair_step(3.0, 2.0, 0.0, 0.0, 0.1, -1.0, 1.0);
        assert!(d > 0.0);
        assert!(w > 0.0);
    }
}
