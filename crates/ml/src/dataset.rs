use linalg::Matrix;
use rand::Rng;

use crate::convert::{ceil_count, count_f64};
use crate::MlError;

/// A supervised dataset: feature rows `X` and (possibly multi-target)
/// outputs `Y`.
///
/// The paper's dataset has 3 features (`γ₁OPT(p=1)`, `β₁OPT(p=1)`, target
/// depth `pt`) and up to `2·6 = 12` response columns; 330 rows are split
/// 20:80 into train and test ([`Dataset::split`]).
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::Dataset;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]])?;
/// let y = Matrix::from_rows(&[&[10.0], &[20.0], &[30.0], &[40.0]])?;
/// let data = Dataset::new(x, y)?;
/// let (train, test) = data.split(0.5);
/// assert_eq!(train.len() + test.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Matrix,
    y: Matrix,
}

impl Dataset {
    /// Wraps features and targets.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if row counts differ and
    /// [`MlError::EmptyTrainingSet`] for zero rows.
    pub fn new(x: Matrix, y: Matrix) -> Result<Self, MlError> {
        if x.rows() != y.rows() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.rows(),
                what: "target rows",
            });
        }
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        Ok(Self { x, y })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// `true` if there are no samples (unreachable after `new`, but kept for
    /// API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// Number of feature columns.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of target columns.
    #[must_use]
    pub fn n_targets(&self) -> usize {
        self.y.cols()
    }

    /// Borrows the feature matrix.
    #[must_use]
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// Borrows the target matrix.
    #[must_use]
    pub fn targets(&self) -> &Matrix {
        &self.y
    }

    /// Target column `j` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_targets()`.
    #[must_use]
    pub fn target_column(&self, j: usize) -> Vec<f64> {
        self.y.col(j).into_vec()
    }

    /// Splits the first `ceil(fraction·n)` rows into the first dataset and
    /// the rest into the second — deterministic, preserving row order (the
    /// paper's fixed 66/264 split). Shuffle first ([`Dataset::shuffled`])
    /// for a randomized split.
    #[must_use]
    pub fn split(&self, fraction: f64) -> (Dataset, Dataset) {
        let n = self.len();
        let k = ceil_count(fraction.clamp(0.0, 1.0) * count_f64(n))
            .clamp(1, n.saturating_sub(1).max(1));
        (self.take_rows(0, k), self.take_rows(k, n))
    }

    /// A copy with rows permuted uniformly at random.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        self.select_rows(&order)
    }

    /// A copy containing exactly the listed rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> Dataset {
        let x = Matrix::from_fn(rows.len(), self.x.cols(), |i, j| self.x.get(rows[i], j));
        let y = Matrix::from_fn(rows.len(), self.y.cols(), |i, j| self.y.get(rows[i], j));
        Dataset { x, y }
    }

    fn take_rows(&self, from: usize, to: usize) -> Dataset {
        let rows: Vec<usize> = (from..to).collect();
        self.select_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let y = Matrix::from_fn(n, 1, |i, _| i as f64);
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn construction_checks() {
        let x = Matrix::from_fn(3, 2, |_, _| 0.0);
        let y = Matrix::from_fn(2, 1, |_, _| 0.0);
        assert!(matches!(
            Dataset::new(x, y),
            Err(MlError::ShapeMismatch { .. })
        ));
        let d = toy(5);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_targets(), 1);
    }

    #[test]
    fn paper_split_ratio() {
        // 330 rows at 20% -> 66 train / 264 test, like the paper.
        let d = toy(330);
        let (train, test) = d.split(0.2);
        assert_eq!(train.len(), 66);
        assert_eq!(test.len(), 264);
    }

    #[test]
    fn split_extremes_never_empty() {
        let d = toy(4);
        let (a, b) = d.split(0.0);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        let (a, b) = d.split(1.0);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn shuffle_is_permutation() {
        let d = toy(20);
        let mut rng = StdRng::seed_from_u64(3);
        let s = d.shuffled(&mut rng);
        assert_eq!(s.len(), 20);
        let mut targets: Vec<f64> = (0..20).map(|i| s.targets().get(i, 0)).collect();
        targets.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(targets, expect);
    }

    #[test]
    fn select_rows_orders() {
        let d = toy(5);
        let s = d.select_rows(&[4, 0]);
        assert_eq!(s.targets().get(0, 0), 4.0);
        assert_eq!(s.targets().get(1, 0), 0.0);
        assert_eq!(s.target_column(0), vec![4.0, 0.0]);
    }
}
