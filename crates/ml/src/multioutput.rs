use linalg::Matrix;

use crate::{MlError, ModelKind, Regressor};

/// Trains one single-output model per target column and predicts them all
/// at once.
///
/// The paper's predictor maps 3 features to `2·pt` responses
/// (`γ₁…γ_pt, β₁…β_pt`); like MATLAB, it does so with independent
/// per-response regressions, which is exactly what this wrapper provides.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{ModelKind, MultiOutput};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]])?;
/// // Two targets: y0 = x, y1 = -x.
/// let y = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, -1.0], &[2.0, -2.0], &[3.0, -3.0]])?;
/// let mut model = MultiOutput::new(ModelKind::Linear);
/// model.fit(&x, &y)?;
/// let out = model.predict(&[5.0])?;
/// assert!((out[0] - 5.0).abs() < 1e-9 && (out[1] + 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub struct MultiOutput {
    kind: ModelKind,
    models: Vec<Box<dyn Regressor>>,
}

impl MultiOutput {
    /// Creates an unfitted wrapper that will instantiate `kind` per target.
    #[must_use]
    pub fn new(kind: ModelKind) -> Self {
        Self {
            kind,
            models: Vec::new(),
        }
    }

    /// The model family used per target.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of fitted targets (0 before fitting).
    #[must_use]
    pub fn n_targets(&self) -> usize {
        self.models.len()
    }

    /// Fits one model per column of `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::ShapeMismatch`] if row counts differ.
    /// * [`MlError::EmptyTrainingSet`] for zero rows or zero target columns.
    /// * Any per-target fitting error.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) -> Result<(), MlError> {
        if x.rows() != y.rows() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.rows(),
                what: "target rows",
            });
        }
        if y.cols() == 0 || y.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut models = Vec::with_capacity(y.cols());
        for j in 0..y.cols() {
            let target = y.col(j).into_vec();
            let mut model = self.kind.build();
            model.fit(x, &target)?;
            models.push(model);
        }
        self.models = models;
        Ok(())
    }

    /// Predicts all targets for one feature vector, in column order.
    ///
    /// # Errors
    ///
    /// * [`MlError::NotFitted`] before [`MultiOutput::fit`].
    /// * Any per-target prediction error.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.models.is_empty() {
            return Err(MlError::NotFitted);
        }
        self.models.iter().map(|m| m.predict(x)).collect()
    }

    /// Predicts all targets for every row of `x` (rows × targets).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiOutput::predict`].
    pub fn predict_batch(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if self.models.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut out = Matrix::zeros(x.rows(), self.models.len());
        for i in 0..x.rows() {
            let row = self.predict(x.row(i))?;
            for (j, v) in row.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for MultiOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiOutput")
            .field("kind", &self.kind)
            .field("n_targets", &self.models.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted() -> (Matrix, Matrix) {
        // Non-collinear features so OLS is identifiable.
        let x = Matrix::from_fn(10, 2, |i, j| {
            if j == 0 {
                i as f64
            } else {
                ((i * i) % 7) as f64
            }
        });
        // y0 = x0 + x1, y1 = x0 - 2 x1 + 3.
        let y = Matrix::from_fn(10, 2, |i, j| {
            let (a, b) = (x.get(i, 0), x.get(i, 1));
            if j == 0 {
                a + b
            } else {
                a - 2.0 * b + 3.0
            }
        });
        (x, y)
    }

    #[test]
    fn independent_targets_recovered() {
        let (x, y) = planted();
        let mut m = MultiOutput::new(ModelKind::Linear);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.n_targets(), 2);
        let p = m.predict(&[4.0, 7.0]).unwrap();
        assert!((p[0] - 11.0).abs() < 1e-8);
        assert!((p[1] - (4.0 - 14.0 + 3.0)).abs() < 1e-8);
    }

    #[test]
    fn batch_prediction_shape() {
        let (x, y) = planted();
        let mut m = MultiOutput::new(ModelKind::Tree);
        m.fit(&x, &y).unwrap();
        let out = m.predict_batch(&x).unwrap();
        assert_eq!(out.shape(), (10, 2));
    }

    #[test]
    fn error_paths() {
        let m = MultiOutput::new(ModelKind::Linear);
        assert!(matches!(m.predict(&[1.0]), Err(MlError::NotFitted)));
        let (x, _) = planted();
        assert!(matches!(m.predict_batch(&x), Err(MlError::NotFitted)));
        let mut m = MultiOutput::new(ModelKind::Linear);
        let bad_y = Matrix::zeros(3, 1);
        assert!(m.fit(&x, &bad_y).is_err());
        assert_eq!(m.kind(), ModelKind::Linear);
    }
}
