use linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::convert::{ceil_count, count_f64};
use crate::params::{ModelParams, ParamReader};
use crate::tree::TreeModel;
use crate::{MlError, Regressor};

/// Random-forest regression: bagged CART trees with feature subsampling.
///
/// An ensemble extension of the paper's `RTREE` baseline. A single
/// regression tree predicts piecewise-constant parameter surfaces, which is
/// why it trails GPR in §III-C; averaging many bootstrap-trained trees
/// smooths the response and is the natural "what if the authors had used a
/// stronger tree model" ablation reported by `model_compare`.
///
/// Each tree is trained on a bootstrap resample of the rows and sees a
/// random subset of ⌈√d⌉ features (selected per tree; the selection is
/// applied by projecting the feature vector, so [`TreeModel`] itself is
/// reused unchanged). The run is deterministic for a fixed [`ForestModel::seed`].
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{ForestModel, Regressor};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 10.0]).collect();
/// let y: Vec<f64> = (0..30).map(|i| (i as f64 / 10.0).sin()).collect();
/// let x = Matrix::from_rows(&rows)?;
/// let mut model = ForestModel::default();
/// model.fit(&x, &y)?;
/// let p = model.predict(&[1.5])?;
/// assert!((p - 1.5_f64.sin()).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ForestModel {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Template hyperparameters applied to every tree.
    pub tree: TreeModel,
    /// RNG seed for bootstrap resampling and feature subsetting.
    pub seed: u64,
    members: Vec<(Vec<usize>, TreeModel)>,
    n_features: usize,
}

impl ForestModel {
    /// Creates an unfitted forest of `n_trees` default trees.
    #[must_use]
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            tree: TreeModel::default(),
            seed: 0x00f0_4e57,
            members: Vec::new(),
            n_features: 0,
        }
    }

    /// Returns a copy with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of fitted ensemble members (0 before `fit`).
    #[must_use]
    pub fn n_fitted(&self) -> usize {
        self.members.len()
    }

    /// Rebuilds a fitted forest from exported parameters.
    ///
    /// Layout: ints = `[n_trees, seed, n_features, tpl_max_depth,
    /// tpl_min_samples_split, tpl_min_samples_leaf, n_members]` followed by,
    /// per member, `[subset_len, subset…]` and the member tree's own ints;
    /// floats = the member trees' floats in the same order.
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let n_trees = r.count()?;
        let seed = r.int()?;
        let n_features = r.count()?;
        let tree = TreeModel::with_hyperparams(r.count()?, r.count()?, r.count()?);
        let n_members = r.count()?;
        if n_members == 0 {
            return Err(MlError::Numerical {
                context: "model params: empty forest ensemble",
            });
        }
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            let subset_len = r.count()?;
            let mut feats = Vec::with_capacity(subset_len);
            for _ in 0..subset_len {
                feats.push(r.count()?);
            }
            members.push((feats, TreeModel::read_params(&mut r)?));
        }
        r.finish()?;
        Ok(Self {
            n_trees,
            tree,
            seed,
            members,
            n_features,
        })
    }
}

impl Default for ForestModel {
    fn default() -> Self {
        Self::new(50)
    }
}

impl Regressor for ForestModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        if self.n_trees == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "n_trees",
                value: 0.0,
            });
        }
        let n = x.rows();
        let d = x.cols();
        let m_features = ceil_count(count_f64(d).sqrt()).clamp(1, d);
        let mut rng = StdRng::seed_from_u64(self.seed);

        self.members.clear();
        self.n_features = d;
        for _ in 0..self.n_trees {
            // Bootstrap rows.
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Random feature subset, kept sorted for reproducible projection.
            let mut feats: Vec<usize> = (0..d).collect();
            feats.shuffle(&mut rng);
            feats.truncate(m_features);
            feats.sort_unstable();

            let rows: Vec<Vec<f64>> = sample
                .iter()
                .map(|&i| feats.iter().map(|&j| x.get(i, j)).collect())
                .collect();
            let ys: Vec<f64> = sample.iter().map(|&i| y[i]).collect();
            let sub = Matrix::from_rows(&rows).map_err(|_| MlError::Numerical {
                context: "forest bootstrap matrix",
            })?;

            let mut tree = self.tree.clone();
            tree.fit(&sub, &ys)?;
            self.members.push((feats, tree));
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        if self.members.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                actual: x.len(),
                what: "features",
            });
        }
        let mut sum = 0.0;
        for (feats, tree) in &self.members {
            let proj: Vec<f64> = feats.iter().map(|&j| x[j]).collect();
            sum += tree.predict(&proj)?;
        }
        Ok(sum / count_f64(self.members.len()))
    }

    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        if self.members.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut p = ModelParams::new();
        p.push_count(self.n_trees);
        p.ints.push(self.seed);
        p.push_count(self.n_features);
        p.push_count(self.tree.max_depth);
        p.push_count(self.tree.min_samples_split);
        p.push_count(self.tree.min_samples_leaf);
        p.push_count(self.members.len());
        for (feats, tree) in &self.members {
            p.push_count(feats.len());
            for &j in feats {
                p.push_count(j);
            }
            tree.write_params(&mut p)?;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.1]).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn fits_smooth_function() {
        let (x, y) = sine_data(60);
        let mut m = ForestModel::default();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.n_fitted(), 50);
        for q in [0.5, 2.0, 4.0] {
            let p = m.predict(&[q]).unwrap();
            assert!((p - q.sin()).abs() < 0.25, "q={q} p={p}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = sine_data(40);
        let mut a = ForestModel::new(10);
        let mut b = ForestModel::new(10);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&[1.23]).unwrap(), b.predict(&[1.23]).unwrap());
    }

    #[test]
    fn seed_changes_ensemble() {
        let (x, y) = sine_data(40);
        let mut a = ForestModel::new(10);
        let mut b = ForestModel::new(10).with_seed(7);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_ne!(a.predict(&[1.23]).unwrap(), b.predict(&[1.23]).unwrap());
    }

    #[test]
    fn smoother_than_single_tree() {
        // Ensemble variance across nearby queries should not exceed a single
        // deep tree's (piecewise-constant jumps get averaged away).
        let (x, y) = sine_data(80);
        let mut forest = ForestModel::new(100);
        forest.fit(&x, &y).unwrap();
        let mut tree = TreeModel::default();
        tree.fit(&x, &y).unwrap();
        let queries: Vec<f64> = (0..200).map(|i| i as f64 * 0.035).collect();
        let err = |f: &dyn Fn(&[f64]) -> f64| -> f64 {
            queries
                .iter()
                .map(|&q| (f(&[q]) - q.sin()).powi(2))
                .sum::<f64>()
                / queries.len() as f64
        };
        let forest_mse = err(&|q: &[f64]| forest.predict(q).unwrap());
        let tree_mse = err(&|q: &[f64]| tree.predict(q).unwrap());
        // The forest should be at worst mildly worse, typically better.
        assert!(
            forest_mse <= tree_mse * 2.0,
            "forest {forest_mse} tree {tree_mse}"
        );
    }

    #[test]
    fn multifeature_uses_feature_subsets() {
        // 4 features, only feature 2 matters.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let t = i as f64 * 0.1;
            rows.push(vec![0.0, 1.0, t, -t]);
            y.push(3.0 * t);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = ForestModel::new(60);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[0.0, 1.0, 2.0, -2.0]).unwrap();
        assert!((p - 6.0).abs() < 1.0, "{p}");
    }

    #[test]
    fn errors() {
        let mut m = ForestModel::default();
        assert!(matches!(m.predict(&[1.0]), Err(MlError::NotFitted)));
        let (x, y) = sine_data(10);
        let mut zero = ForestModel::new(0);
        assert!(matches!(
            zero.fit(&x, &y),
            Err(MlError::InvalidHyperparameter { .. })
        ));
        m.fit(&x, &y).unwrap();
        assert!(matches!(
            m.predict(&[1.0, 2.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        let empty = Matrix::zeros(0, 1);
        assert!(matches!(m.fit(&empty, &[]), Err(MlError::EmptyTrainingSet)));
    }
}
