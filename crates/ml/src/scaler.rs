use linalg::Matrix;

use crate::convert::count_f64;
use crate::MlError;

/// Column-wise standardization to zero mean and unit variance.
///
/// GPR and SVR are scale-sensitive; the QAOA features mix angles in
/// `[0, 2π]` with integer depths in `[2, 6]`, so both models standardize
/// inputs through this type. Constant columns get unit scale (they carry no
/// information but must not divide by zero).
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::StandardScaler;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[&[0.0, 10.0], &[2.0, 10.0], &[4.0, 10.0]])?;
/// let scaler = StandardScaler::fit(&x)?;
/// let z = scaler.transform_row(&[2.0, 10.0])?;
/// assert!(z[0].abs() < 1e-12); // mean maps to 0
/// assert_eq!(z[1], 0.0);       // constant column untouched
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column means and standard deviations (population, like
    /// scikit-learn).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] for a zero-row matrix.
    pub fn fit(x: &Matrix) -> Result<Self, MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let n = count_f64(x.rows());
        let mut means = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            for (j, m) in means.iter_mut().enumerate() {
                *m += x.get(i, j);
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut scales = vec![0.0; x.cols()];
        for i in 0..x.rows() {
            for (j, s) in scales.iter_mut().enumerate() {
                let d = x.get(i, j) - means[j];
                *s += d * d;
            }
        }
        for s in &mut scales {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: identity scale
            }
        }
        Ok(Self { means, scales })
    }

    /// Rebuilds a scaler from stored per-column means and scales.
    pub(crate) fn from_parts(means: Vec<f64>, scales: Vec<f64>) -> Result<Self, MlError> {
        if means.len() != scales.len() {
            return Err(MlError::ShapeMismatch {
                expected: means.len(),
                actual: scales.len(),
                what: "scaler columns",
            });
        }
        Ok(Self { means, scales })
    }

    /// Per-column means learned at fit time.
    pub(crate) fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column scales (standard deviations) learned at fit time.
    pub(crate) fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Number of columns the scaler was fitted on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] for a wrong feature count.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::ShapeMismatch {
                expected: self.means.len(),
                actual: row.len(),
                what: "features",
            });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.scales))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect())
    }

    /// Standardizes a whole matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StandardScaler::transform_row`].
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, MlError> {
        if x.cols() != self.means.len() {
            return Err(MlError::ShapeMismatch {
                expected: self.means.len(),
                actual: x.cols(),
                what: "features",
            });
        }
        Ok(Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            (x.get(i, j) - self.means[j]) / self.scales[j]
        }))
    }

    /// Undoes the standardization of one row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StandardScaler::transform_row`].
    pub fn inverse_transform_row(&self, row: &[f64]) -> Result<Vec<f64>, MlError> {
        if row.len() != self.means.len() {
            return Err(MlError::ShapeMismatch {
                expected: self.means.len(),
                actual: row.len(),
                what: "features",
            });
        }
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.scales))
            .map(|(&v, (&m, &s))| v * s + m)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Matrix::from_rows(&[&[1.0, 100.0], &[3.0, 200.0], &[5.0, 300.0]]).unwrap();
        let sc = StandardScaler::fit(&x).unwrap();
        let z = sc.transform(&x).unwrap();
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| z.get(i, j)).collect();
            let m = col.iter().sum::<f64>() / 3.0;
            let var = col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / 3.0;
            assert!(m.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip() {
        let x = Matrix::from_rows(&[&[2.0, -1.0], &[4.0, 7.0]]).unwrap();
        let sc = StandardScaler::fit(&x).unwrap();
        let z = sc.transform_row(&[3.0, 0.0]).unwrap();
        let back = sc.inverse_transform_row(&z).unwrap();
        assert!((back[0] - 3.0).abs() < 1e-12);
        assert!((back[1] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_is_safe() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0]]).unwrap();
        let sc = StandardScaler::fit(&x).unwrap();
        let z = sc.transform_row(&[5.0]).unwrap();
        assert_eq!(z[0], 0.0);
        assert_eq!(sc.n_features(), 1);
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let sc = StandardScaler::fit(&x).unwrap();
        assert!(sc.transform_row(&[1.0]).is_err());
        assert!(sc.inverse_transform_row(&[1.0]).is_err());
        let wrong = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(sc.transform(&wrong).is_err());
    }
}
