//! Regression evaluation metrics.
//!
//! The paper compares its four models on MSE, RMSE, MAE, R², adjusted R²
//! (§III-C) and reports predictor/response correlations as Pearson
//! coefficients (Fig. 5); all of those live here.

use crate::convert::count_f64;
use crate::MlError;

fn check_pair(y_true: &[f64], y_pred: &[f64]) -> Result<usize, MlError> {
    if y_true.len() != y_pred.len() {
        return Err(MlError::ShapeMismatch {
            expected: y_true.len(),
            actual: y_pred.len(),
            what: "predictions",
        });
    }
    if y_true.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    Ok(y_true.len())
}

/// Mean squared error `Σ(yᵢ − ŷᵢ)² / n`.
///
/// # Errors
///
/// [`MlError::ShapeMismatch`] on length mismatch,
/// [`MlError::EmptyTrainingSet`] on empty input.
///
/// ```
/// assert_eq!(ml::metrics::mse(&[1.0, 2.0], &[1.0, 4.0]).unwrap(), 2.0);
/// ```
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    let n = check_pair(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / count_f64(n))
}

/// Root mean squared error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    Ok(mse(y_true, y_pred)?.sqrt())
}

/// Mean absolute error `Σ|yᵢ − ŷᵢ| / n`.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    let n = check_pair(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / count_f64(n))
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`.
///
/// Returns `0.0` when the targets are constant and predictions imperfect
/// (scikit-learn convention), `1.0` when both are constant and equal.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    let n = check_pair(y_true, y_pred)?;
    let mean = y_true.iter().sum::<f64>() / count_f64(n);
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Adjusted R² for a model with `n_features` predictors:
/// `1 − (1 − R²)(n − 1)/(n − k − 1)`.
///
/// Falls back to plain R² when `n ≤ k + 1` (the correction is undefined).
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn adjusted_r2(y_true: &[f64], y_pred: &[f64], n_features: usize) -> Result<f64, MlError> {
    let n = check_pair(y_true, y_pred)?;
    let r = r2(y_true, y_pred)?;
    if n <= n_features + 1 {
        return Ok(r);
    }
    let n = count_f64(n);
    let k = count_f64(n_features);
    Ok(1.0 - (1.0 - r) * (n - 1.0) / (n - k - 1.0))
}

/// Pearson correlation coefficient in `[-1, 1]`.
///
/// Returns `0.0` when either series is constant (no linear relationship is
/// observable), matching common statistical-package behaviour for the
/// degenerate case.
///
/// # Errors
///
/// Same conditions as [`mse`].
///
/// ```
/// let r = ml::metrics::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, MlError> {
    let n = check_pair(a, b)?;
    let n_f = count_f64(n);
    let mean_a = a.iter().sum::<f64>() / n_f;
    let mean_b = b.iter().sum::<f64>() / n_f;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a) * (x - mean_a);
        var_b += (y - mean_b) * (y - mean_b);
    }
    if var_a == 0.0 || var_b == 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0))
}

/// Mean absolute percentage error (in percent), skipping zero targets.
///
/// The paper's Fig. 6 reports prediction error as absolute percentage
/// deviation from the true optimal parameters.
///
/// # Errors
///
/// Same conditions as [`mse`]; also [`MlError::Numerical`] if every target
/// is zero.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> Result<f64, MlError> {
    check_pair(y_true, y_pred)?;
    let mut total = 0.0;
    let mut count = 0usize;
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t != 0.0 {
            total += ((t - p) / t).abs();
            count += 1;
        }
    }
    if count == 0 {
        return Err(MlError::Numerical {
            context: "mape with all-zero targets",
        });
    }
    Ok(100.0 * total / count_f64(count))
}

/// Sample mean of a slice (`0.0` for empty input).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / count_f64(values.len())
    }
}

/// Sample standard deviation (with the `n − 1` correction; `0.0` for fewer
/// than two values).
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / count_f64(values.len() - 1)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn error_metrics_on_perfect_fit() {
        let y = [1.0, -2.0, 3.5];
        assert_eq!(mse(&y, &y).unwrap(), 0.0);
        assert_eq!(rmse(&y, &y).unwrap(), 0.0);
        assert_eq!(mae(&y, &y).unwrap(), 0.0);
        assert_eq!(r2(&y, &y).unwrap(), 1.0);
    }

    #[test]
    fn known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!((mse(&t, &p).unwrap() - 2.0 / 3.0).abs() < EPS);
        assert!((mae(&t, &p).unwrap() - 2.0 / 3.0).abs() < EPS);
        // SS_res = 2, SS_tot = 2 -> R² = 0 (predicting the mean).
        assert!(r2(&t, &p).unwrap().abs() < EPS);
    }

    #[test]
    fn r2_degenerate_targets() {
        assert_eq!(r2(&[2.0, 2.0], &[2.0, 2.0]).unwrap(), 1.0);
        assert_eq!(r2(&[2.0, 2.0], &[1.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn adjusted_r2_penalizes_features() {
        let t = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let p = [1.1, 1.9, 3.2, 3.8, 5.1, 5.9];
        let plain = r2(&t, &p).unwrap();
        let adj1 = adjusted_r2(&t, &p, 1).unwrap();
        let adj3 = adjusted_r2(&t, &p, 3).unwrap();
        assert!(adj1 < plain);
        assert!(adj3 < adj1);
        // Degenerate sample size falls back to plain R².
        assert_eq!(
            adjusted_r2(&t[..2], &p[..2], 5).unwrap(),
            r2(&t[..2], &p[..2]).unwrap()
        );
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < EPS);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < EPS);
        assert_eq!(pearson(&x, &[5.0; 4]).unwrap(), 0.0);
    }

    #[test]
    fn mape_skips_zeros() {
        let t = [0.0, 2.0];
        let p = [1.0, 1.0];
        assert!((mape(&t, &p).unwrap() - 50.0).abs() < EPS);
        assert!(mape(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn shape_errors() {
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mse(&[], &[]).is_err());
        assert!(pearson(&[1.0], &[]).is_err());
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < EPS);
    }
}
