//! Supervised regression models, metrics and preprocessing.
//!
//! This crate replaces the MATLAB Statistics & ML Toolbox models the paper
//! trains as QAOA parameter predictors:
//!
//! * [`GprModel`] — Gaussian process regression (`fitrgp`), the paper's best
//!   model,
//! * [`LinearModel`] — ordinary least squares (`fitlm`),
//! * [`TreeModel`] — CART regression tree (`fitrtree`),
//! * [`SvrModel`] — ε-support-vector regression (`fitrsvm`),
//!
//! plus the shared machinery: the [`Regressor`] trait, a [`Dataset`]
//! container with deterministic train/test splitting (the paper's 20:80
//! split), feature standardization ([`StandardScaler`]), the
//! [`MultiOutput`] wrapper (the predictor emits `2·pt` parameters from one
//! feature vector), and the evaluation metrics of §III-C
//! ([`metrics`]: MSE, RMSE, MAE, R², adjusted R², Pearson correlation).
//!
//! # Example
//!
//! ```
//! use linalg::Matrix;
//! use ml::{LinearModel, Regressor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fit y = 1 + 2 x.
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]])?;
//! let y = [1.0, 3.0, 5.0, 7.0];
//! let mut model = LinearModel::new();
//! model.fit(&x, &y)?;
//! assert!((model.predict(&[4.0])? - 9.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod cross_validation;
mod dataset;
mod error;
mod forest;
mod gpr;
mod kernel;
mod knn;
mod linear;
pub mod metrics;
mod multioutput;
mod ridge;
mod scaler;
mod svr;
mod tree;

pub use dataset::Dataset;
pub use error::MlError;
pub use forest::ForestModel;
pub use gpr::{GprModel, GprPrediction};
pub use kernel::RbfKernel;
pub use knn::KnnModel;
pub use linear::LinearModel;
pub use multioutput::MultiOutput;
pub use ridge::RidgeModel;
pub use scaler::StandardScaler;
pub use svr::SvrModel;
pub use tree::TreeModel;

use linalg::Matrix;

/// A single-output regression model.
///
/// All four paper models implement this trait, which is object-safe so the
/// QAOA predictor can switch models at run time (§III-C compares them).
pub trait Regressor: Send + Sync {
    /// Fits the model to feature rows `x` and targets `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::ShapeMismatch`] if `x.rows() != y.len()`.
    /// * [`MlError::EmptyTrainingSet`] for zero rows.
    /// * Model-specific numerical failures ([`MlError::Numerical`]).
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError>;

    /// Predicts the target for one feature vector.
    ///
    /// # Errors
    ///
    /// * [`MlError::NotFitted`] before [`Regressor::fit`] succeeds.
    /// * [`MlError::ShapeMismatch`] for a wrong feature count.
    fn predict(&self, x: &[f64]) -> Result<f64, MlError>;

    /// Predicts targets for every row of `x`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regressor::predict`].
    fn predict_batch(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        (0..x.rows()).map(|i| self.predict(x.row(i))).collect()
    }

    /// Short identifier used in comparison tables (e.g. `"GPR"`).
    fn name(&self) -> &'static str;
}

/// The four model families compared in §III-C, plus the extension models
/// ([`RidgeModel`], [`KnnModel`], [`ForestModel`]) evaluated alongside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Gaussian process regression (the paper's winner).
    Gpr,
    /// Ordinary least squares.
    Linear,
    /// CART regression tree.
    Tree,
    /// ε-support-vector regression.
    Svr,
    /// Ridge-regularized linear regression (extension).
    Ridge,
    /// k-nearest-neighbour regression (extension).
    Knn,
    /// Random-forest regression (extension).
    Forest,
}

impl ModelKind {
    /// The four paper kinds in the paper's order (GPR, LM, RTREE, RSVM).
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Gpr,
        ModelKind::Linear,
        ModelKind::Tree,
        ModelKind::Svr,
    ];

    /// The paper's four kinds followed by the three extension models.
    pub const EXTENDED: [ModelKind; 7] = [
        ModelKind::Gpr,
        ModelKind::Linear,
        ModelKind::Tree,
        ModelKind::Svr,
        ModelKind::Ridge,
        ModelKind::Knn,
        ModelKind::Forest,
    ];

    /// Instantiates a default-configured model of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn Regressor> {
        match self {
            ModelKind::Gpr => Box::new(GprModel::default()),
            ModelKind::Linear => Box::new(LinearModel::new()),
            ModelKind::Tree => Box::new(TreeModel::default()),
            ModelKind::Svr => Box::new(SvrModel::default()),
            ModelKind::Ridge => Box::new(RidgeModel::default()),
            ModelKind::Knn => Box::new(KnnModel::default()),
            ModelKind::Forest => Box::new(ForestModel::default()),
        }
    }

    /// The paper's abbreviation for this model (extensions use our names).
    #[must_use]
    pub fn abbreviation(self) -> &'static str {
        match self {
            ModelKind::Gpr => "GPR",
            ModelKind::Linear => "LM",
            ModelKind::Tree => "RTREE",
            ModelKind::Svr => "RSVM",
            ModelKind::Ridge => "RIDGE",
            ModelKind::Knn => "KNN",
            ModelKind::Forest => "RFOREST",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_roundtrip() {
        for kind in ModelKind::ALL {
            let model = kind.build();
            assert!(!model.name().is_empty());
            assert_eq!(kind.to_string(), kind.abbreviation());
        }
    }

    #[test]
    fn all_kinds_fit_a_line() {
        let x = Matrix::from_rows(&[
            &[0.0],
            &[0.5],
            &[1.0],
            &[1.5],
            &[2.0],
            &[2.5],
            &[3.0],
            &[3.5],
        ])
        .unwrap();
        let y: Vec<f64> = (0..8).map(|i| 1.0 + 0.25 * i as f64).collect();
        for kind in ModelKind::ALL {
            let mut m = kind.build();
            m.fit(&x, &y).unwrap();
            let preds = m.predict_batch(&x).unwrap();
            let mse = metrics::mse(&y, &preds).unwrap();
            assert!(mse < 0.5, "{kind} mse = {mse}");
        }
    }
}
