//! Supervised regression models, metrics and preprocessing.
//!
//! This crate replaces the MATLAB Statistics & ML Toolbox models the paper
//! trains as QAOA parameter predictors:
//!
//! * [`GprModel`] — Gaussian process regression (`fitrgp`), the paper's best
//!   model,
//! * [`LinearModel`] — ordinary least squares (`fitlm`),
//! * [`TreeModel`] — CART regression tree (`fitrtree`),
//! * [`SvrModel`] — ε-support-vector regression (`fitrsvm`),
//!
//! plus the shared machinery: the [`Regressor`] trait, a [`Dataset`]
//! container with deterministic train/test splitting (the paper's 20:80
//! split), feature standardization ([`StandardScaler`]), the
//! [`MultiOutput`] wrapper (the predictor emits `2·pt` parameters from one
//! feature vector), and the evaluation metrics of §III-C
//! ([`metrics`]: MSE, RMSE, MAE, R², adjusted R², Pearson correlation).
//!
//! # Example
//!
//! ```
//! use linalg::Matrix;
//! use ml::{LinearModel, Regressor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fit y = 1 + 2 x.
//! let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]])?;
//! let y = [1.0, 3.0, 5.0, 7.0];
//! let mut model = LinearModel::new();
//! model.fit(&x, &y)?;
//! assert!((model.predict(&[4.0])? - 9.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

mod convert;
pub mod cross_validation;
mod dataset;
mod error;
mod forest;
mod gpr;
mod kernel;
mod knn;
mod linear;
pub mod metrics;
mod multioutput;
mod params;
mod ridge;
mod scaler;
mod svr;
mod tree;

pub use dataset::Dataset;
pub use error::MlError;
pub use forest::ForestModel;
pub use gpr::{GprModel, GprPrediction};
pub use kernel::RbfKernel;
pub use knn::KnnModel;
pub use linear::LinearModel;
pub use multioutput::MultiOutput;
pub use params::ModelParams;
pub use ridge::RidgeModel;
pub use scaler::StandardScaler;
pub use svr::SvrModel;
pub use tree::TreeModel;

use linalg::Matrix;

/// A single-output regression model.
///
/// All four paper models implement this trait, which is object-safe so the
/// QAOA predictor can switch models at run time (§III-C compares them).
pub trait Regressor: Send + Sync {
    /// Fits the model to feature rows `x` and targets `y`.
    ///
    /// # Errors
    ///
    /// * [`MlError::ShapeMismatch`] if `x.rows() != y.len()`.
    /// * [`MlError::EmptyTrainingSet`] for zero rows.
    /// * Model-specific numerical failures ([`MlError::Numerical`]).
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError>;

    /// Predicts the target for one feature vector.
    ///
    /// # Errors
    ///
    /// * [`MlError::NotFitted`] before [`Regressor::fit`] succeeds.
    /// * [`MlError::ShapeMismatch`] for a wrong feature count.
    fn predict(&self, x: &[f64]) -> Result<f64, MlError>;

    /// Predicts targets for every row of `x`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regressor::predict`].
    fn predict_batch(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        (0..x.rows()).map(|i| self.predict(x.row(i))).collect()
    }

    /// Short identifier used in comparison tables (e.g. `"GPR"`).
    fn name(&self) -> &'static str;

    /// Exports the fitted model's complete learned state.
    ///
    /// The returned [`ModelParams`] round-trips through
    /// [`ModelKind::from_params`] into a model whose predictions are
    /// bit-identical to this one's.
    ///
    /// # Errors
    ///
    /// * [`MlError::NotFitted`] before [`Regressor::fit`] succeeds.
    fn to_params(&self) -> Result<ModelParams, MlError>;
}

/// The four model families compared in §III-C, plus the extension models
/// ([`RidgeModel`], [`KnnModel`], [`ForestModel`]) evaluated alongside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Gaussian process regression (the paper's winner).
    Gpr,
    /// Ordinary least squares.
    Linear,
    /// CART regression tree.
    Tree,
    /// ε-support-vector regression.
    Svr,
    /// Ridge-regularized linear regression (extension).
    Ridge,
    /// k-nearest-neighbour regression (extension).
    Knn,
    /// Random-forest regression (extension).
    Forest,
}

impl ModelKind {
    /// The four paper kinds in the paper's order (GPR, LM, RTREE, RSVM).
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Gpr,
        ModelKind::Linear,
        ModelKind::Tree,
        ModelKind::Svr,
    ];

    /// The paper's four kinds followed by the three extension models.
    pub const EXTENDED: [ModelKind; 7] = [
        ModelKind::Gpr,
        ModelKind::Linear,
        ModelKind::Tree,
        ModelKind::Svr,
        ModelKind::Ridge,
        ModelKind::Knn,
        ModelKind::Forest,
    ];

    /// Instantiates a default-configured model of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn Regressor> {
        match self {
            ModelKind::Gpr => Box::new(GprModel::default()),
            ModelKind::Linear => Box::new(LinearModel::new()),
            ModelKind::Tree => Box::new(TreeModel::default()),
            ModelKind::Svr => Box::new(SvrModel::default()),
            ModelKind::Ridge => Box::new(RidgeModel::default()),
            ModelKind::Knn => Box::new(KnnModel::default()),
            ModelKind::Forest => Box::new(ForestModel::default()),
        }
    }

    /// The paper's abbreviation for this model (extensions use our names).
    #[must_use]
    pub fn abbreviation(self) -> &'static str {
        match self {
            ModelKind::Gpr => "GPR",
            ModelKind::Linear => "LM",
            ModelKind::Tree => "RTREE",
            ModelKind::Svr => "RSVM",
            ModelKind::Ridge => "RIDGE",
            ModelKind::Knn => "KNN",
            ModelKind::Forest => "RFOREST",
        }
    }

    /// The inverse of [`ModelKind::abbreviation`] (model artifacts store the
    /// abbreviation as the kind tag).
    #[must_use]
    pub fn from_abbreviation(abbr: &str) -> Option<ModelKind> {
        ModelKind::EXTENDED
            .into_iter()
            .find(|kind| kind.abbreviation() == abbr)
    }

    /// Rebuilds a fitted model of this kind from exported parameters.
    ///
    /// The result predicts bit-identically to the model that produced
    /// `params` via [`Regressor::to_params`].
    ///
    /// # Errors
    ///
    /// [`MlError::Numerical`] when `params` is truncated, carries trailing
    /// values, or encodes an invalid state for this kind.
    pub fn from_params(self, params: &ModelParams) -> Result<Box<dyn Regressor>, MlError> {
        Ok(match self {
            ModelKind::Gpr => Box::new(GprModel::from_params(params)?),
            ModelKind::Linear => Box::new(LinearModel::from_params(params)?),
            ModelKind::Tree => Box::new(TreeModel::from_params(params)?),
            ModelKind::Svr => Box::new(SvrModel::from_params(params)?),
            ModelKind::Ridge => Box::new(RidgeModel::from_params(params)?),
            ModelKind::Knn => Box::new(KnnModel::from_params(params)?),
            ModelKind::Forest => Box::new(ForestModel::from_params(params)?),
        })
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_roundtrip() {
        for kind in ModelKind::ALL {
            let model = kind.build();
            assert!(!model.name().is_empty());
            assert_eq!(kind.to_string(), kind.abbreviation());
        }
    }

    #[test]
    fn params_roundtrip_is_bit_identical_for_every_kind() {
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                let t = i as f64 * 0.37;
                vec![t.sin(), t * 0.25, (i % 5) as f64]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..24)
            .map(|i| {
                let t = i as f64 * 0.37;
                0.5 * t.sin() + 0.1 * t
            })
            .collect();
        let queries: Vec<Vec<f64>> = rows
            .iter()
            .cloned()
            .chain([vec![0.2, 1.3, 2.0], vec![-0.9, 0.0, 4.5]])
            .collect();
        for kind in ModelKind::EXTENDED {
            let mut model = kind.build();
            model.fit(&x, &y).unwrap();
            let params = model.to_params().unwrap();
            let restored = kind.from_params(&params).unwrap();
            for q in &queries {
                let a = model.predict(q).unwrap();
                let b = restored.predict(q).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{kind} at {q:?}");
            }
            // The restored model exports the same parameters again.
            assert_eq!(params, restored.to_params().unwrap(), "{kind}");
        }
    }

    #[test]
    fn unfitted_models_refuse_to_export() {
        for kind in ModelKind::EXTENDED {
            assert!(matches!(kind.build().to_params(), Err(MlError::NotFitted)));
        }
    }

    #[test]
    fn truncated_params_are_rejected_for_every_kind() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]).unwrap();
        let y = [0.0, 1.0, 0.5, 2.0, 1.5, 3.0];
        for kind in ModelKind::EXTENDED {
            let mut model = kind.build();
            model.fit(&x, &y).unwrap();
            let params = model.to_params().unwrap();
            let mut truncated = params.clone();
            truncated.floats.pop();
            assert!(kind.from_params(&truncated).is_err(), "{kind} truncated");
            let mut trailing = params;
            trailing.floats.push(0.0);
            assert!(kind.from_params(&trailing).is_err(), "{kind} trailing");
        }
    }

    #[test]
    fn abbreviation_roundtrip() {
        for kind in ModelKind::EXTENDED {
            assert_eq!(
                ModelKind::from_abbreviation(kind.abbreviation()),
                Some(kind)
            );
        }
        assert_eq!(ModelKind::from_abbreviation("NOPE"), None);
    }

    #[test]
    fn all_kinds_fit_a_line() {
        let x = Matrix::from_rows(&[
            &[0.0],
            &[0.5],
            &[1.0],
            &[1.5],
            &[2.0],
            &[2.5],
            &[3.0],
            &[3.5],
        ])
        .unwrap();
        let y: Vec<f64> = (0..8).map(|i| 1.0 + 0.25 * i as f64).collect();
        for kind in ModelKind::ALL {
            let mut m = kind.build();
            m.fit(&x, &y).unwrap();
            let preds = m.predict_batch(&x).unwrap();
            let mse = metrics::mse(&y, &preds).unwrap();
            assert!(mse < 0.5, "{kind} mse = {mse}");
        }
    }
}
