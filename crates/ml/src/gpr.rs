use linalg::{Cholesky, Matrix, Vector};

use crate::convert::count_f64;
use crate::params::ParamReader;
use crate::{MlError, ModelParams, RbfKernel, Regressor, StandardScaler};

/// A Gaussian-process prediction: posterior mean and variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GprPrediction {
    /// Posterior mean (the point prediction).
    pub mean: f64,
    /// Posterior variance (non-negative; clipped at zero).
    pub variance: f64,
}

/// Gaussian process regression with an RBF kernel — the paper's best model.
///
/// Mirrors MATLAB `fitrgp` defaults: squared-exponential kernel,
/// standardized inputs, constant (mean-of-targets) prior mean, and
/// hyperparameters chosen by maximizing the log marginal likelihood. The
/// likelihood search here is a deterministic grid over length scale, signal
/// standard deviation and noise standard deviation — ample for the paper's
/// 3-feature, 66-sample training sets and fully reproducible.
///
/// Fitting cost is `O(g · n³)` for `g` grid points; prediction is `O(n)` per
/// query.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{GprModel, Regressor};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Noise-free sine samples: GPR interpolates them nearly exactly.
/// let xs: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 * 0.5]).collect();
/// let x = Matrix::from_rows(&xs)?;
/// let y: Vec<f64> = (0..9).map(|i| (i as f64 * 0.5).sin()).collect();
/// let mut gpr = GprModel::default();
/// gpr.fit(&x, &y)?;
/// assert!((gpr.predict(&[1.0])? - 1.0_f64.sin()).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GprModel {
    /// Candidate length scales for the likelihood grid (on standardized
    /// features).
    pub length_scales: Vec<f64>,
    /// Candidate signal standard deviations.
    pub signal_stds: Vec<f64>,
    /// Candidate noise standard deviations.
    pub noise_stds: Vec<f64>,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: StandardScaler,
    x_train: Matrix,
    kernel: RbfKernel,
    noise_variance: f64,
    alpha: Vector,
    chol: Cholesky,
    y_mean: f64,
    /// Target standard deviation: targets are standardized before fitting
    /// (as MATLAB `fitrgp` effectively does through its kernel-amplitude
    /// optimization) so the hyperparameter grid is scale-free.
    y_scale: f64,
}

impl Default for GprModel {
    fn default() -> Self {
        Self {
            length_scales: vec![0.3, 0.5, 1.0, 2.0, 4.0, 8.0],
            signal_stds: vec![0.5, 1.0, 2.0],
            noise_stds: vec![1e-4, 1e-3, 1e-2, 5e-2, 1e-1],
            state: None,
        }
    }
}

impl GprModel {
    /// Creates a model with the default hyperparameter grid.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a model with fixed hyperparameters (no grid search) — useful
    /// for ablations and tests.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for non-positive values.
    pub fn with_fixed(length_scale: f64, signal_std: f64, noise_std: f64) -> Result<Self, MlError> {
        RbfKernel::new(length_scale, signal_std)?; // validate early
        if !(noise_std.is_finite() && noise_std > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "noise_std",
                value: noise_std,
            });
        }
        Ok(Self {
            length_scales: vec![length_scale],
            signal_stds: vec![signal_std],
            noise_stds: vec![noise_std],
            state: None,
        })
    }

    /// Rebuilds a fitted model from exported parameters.
    ///
    /// Layout: ints = `[rows, cols]`; floats = `[length_scale,
    /// signal_variance, noise_variance, y_mean, y_scale]` followed by the
    /// scaler means (`cols`), scaler scales (`cols`), standardized training
    /// rows in row-major order (`rows·cols`), and the dual weights α
    /// (`rows`). The Cholesky factor is recomputed from the stored kernel
    /// and training rows — the same deterministic computation `fit` runs, so
    /// predictions (mean and variance) are bit-identical. The grid-search
    /// candidates are fit-time configuration and are restored to defaults.
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let rows = r.count()?;
        let cols = r.count()?;
        if rows == 0 {
            return Err(MlError::Numerical {
                context: "model params: empty GPR training set",
            });
        }
        let length_scale = r.float()?;
        let signal_variance = r.float()?;
        let noise_variance = r.float()?;
        let y_mean = r.float()?;
        let y_scale = r.float()?;
        let kernel = RbfKernel::from_parts(length_scale, signal_variance)?;
        let scaler =
            StandardScaler::from_parts(r.floats(cols)?.to_vec(), r.floats(cols)?.to_vec())?;
        let cells = rows.checked_mul(cols).ok_or(MlError::Numerical {
            context: "model params: GPR shape overflow",
        })?;
        let xdata = r.floats(cells)?;
        let x_train = Matrix::from_fn(rows, cols, |i, j| xdata[i * cols + j]);
        let alpha = Vector::from(r.floats(rows)?.to_vec());
        r.finish()?;
        let mut k = kernel.gram(&x_train);
        k.add_diagonal(noise_variance + 1e-10);
        let chol = k.cholesky()?;
        Ok(Self {
            state: Some(Fitted {
                scaler,
                x_train,
                kernel,
                noise_variance,
                alpha,
                chol,
                y_mean,
                y_scale,
            }),
            ..Self::default()
        })
    }

    /// Posterior mean and variance for one query point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regressor::predict`].
    pub fn predict_with_variance(&self, x: &[f64]) -> Result<GprPrediction, MlError> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        let z = st.scaler.transform_row(x)?;
        let k_star = st.kernel.cross(&st.x_train, &z);
        let standardized_mean: f64 = k_star
            .iter()
            .zip(st.alpha.as_slice())
            .map(|(k, a)| k * a)
            .sum();
        let mean = st.y_mean + st.y_scale * standardized_mean;
        // var = k(x,x) + σ_n² − k*ᵀ (K + σ_n²I)⁻¹ k*, in standardized units.
        let v = st.chol.solve(&Vector::from(k_star.clone()))?;
        let reduction: f64 = k_star.iter().zip(v.as_slice()).map(|(k, vi)| k * vi).sum();
        let variance = (st.kernel.signal_variance() + st.noise_variance - reduction).max(0.0)
            * st.y_scale
            * st.y_scale;
        Ok(GprPrediction { mean, variance })
    }

    /// Log marginal likelihood of the fitted model (the quantity the grid
    /// search maximizes).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before fitting.
    pub fn log_marginal_likelihood(&self, y: &[f64]) -> Result<f64, MlError> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        let centered: Vec<f64> = y.iter().map(|v| (v - st.y_mean) / st.y_scale).collect();
        Ok(lml(&st.chol, &st.alpha, &centered))
    }
}

fn lml(chol: &Cholesky, alpha: &Vector, y_centered: &[f64]) -> f64 {
    let n = count_f64(y_centered.len());
    let fit_term: f64 = y_centered
        .iter()
        .zip(alpha.as_slice())
        .map(|(y, a)| y * a)
        .sum();
    -0.5 * fit_term - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
}

impl Regressor for GprModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let scaler = StandardScaler::fit(x)?;
        let xs = scaler.transform(x)?;
        let y_mean = y.iter().sum::<f64>() / count_f64(y.len());
        // Standardize targets so the hyperparameter grid (built for
        // unit-variance responses) transfers across target scales.
        let y_std = crate::metrics::std_dev(y);
        let y_scale = if y_std > 1e-12 { y_std } else { 1.0 };
        let centered: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();
        let yv = Vector::from(centered.clone());

        let mut best: Option<(f64, Fitted)> = None;
        for &ls in &self.length_scales {
            for &sf in &self.signal_stds {
                let kernel = RbfKernel::new(ls, sf)?;
                let gram = kernel.gram(&xs);
                for &sn in &self.noise_stds {
                    let mut k = gram.clone();
                    k.add_diagonal(sn * sn + 1e-10);
                    let Ok(chol) = k.cholesky() else { continue };
                    let Ok(alpha) = chol.solve(&yv) else { continue };
                    let score = lml(&chol, &alpha, &centered);
                    if !score.is_finite() {
                        continue;
                    }
                    if best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((
                            score,
                            Fitted {
                                scaler: scaler.clone(),
                                x_train: xs.clone(),
                                kernel,
                                noise_variance: sn * sn,
                                alpha,
                                chol,
                                y_mean,
                                y_scale,
                            },
                        ));
                    }
                }
            }
        }
        match best {
            Some((_, fitted)) => {
                self.state = Some(fitted);
                Ok(())
            }
            None => Err(MlError::Numerical {
                context: "gpr likelihood grid (no positive-definite candidate)",
            }),
        }
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        Ok(self.predict_with_variance(x)?.mean)
    }

    fn name(&self) -> &'static str {
        "GPR"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        let st = self.state.as_ref().ok_or(MlError::NotFitted)?;
        let mut p = ModelParams::new();
        p.push_count(st.x_train.rows());
        p.push_count(st.x_train.cols());
        p.floats.push(st.kernel.length_scale());
        p.floats.push(st.kernel.signal_variance());
        p.floats.push(st.noise_variance);
        p.floats.push(st.y_mean);
        p.floats.push(st.y_scale);
        p.floats.extend_from_slice(st.scaler.means());
        p.floats.extend_from_slice(st.scaler.scales());
        for i in 0..st.x_train.rows() {
            p.floats.extend_from_slice(st.x_train.row(i));
        }
        p.floats.extend_from_slice(st.alpha.as_slice());
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.4]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        (x, y)
    }

    #[test]
    fn interpolates_noise_free_data() {
        let (x, y) = sine_data(12);
        let mut gpr = GprModel::default();
        gpr.fit(&x, &y).unwrap();
        for (i, yi) in y.iter().enumerate() {
            let p = gpr.predict(x.row(i)).unwrap();
            assert!((p - yi).abs() < 0.02, "at {i}: {p} vs {yi}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = sine_data(8);
        let mut gpr = GprModel::default();
        gpr.fit(&x, &y).unwrap();
        let near = gpr.predict_with_variance(&[0.4]).unwrap();
        let far = gpr.predict_with_variance(&[40.0]).unwrap();
        assert!(far.variance > near.variance);
        assert!(near.variance >= 0.0);
    }

    #[test]
    fn fixed_hyperparameters() {
        let (x, y) = sine_data(8);
        let mut gpr = GprModel::with_fixed(1.0, 1.0, 1e-3).unwrap();
        gpr.fit(&x, &y).unwrap();
        let p = gpr.predict(&[0.8]).unwrap();
        assert!((p - 0.8_f64.sin()).abs() < 0.1);
        assert!(GprModel::with_fixed(-1.0, 1.0, 0.1).is_err());
        assert!(GprModel::with_fixed(1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn lml_is_finite_and_better_for_right_model() {
        let (x, y) = sine_data(10);
        let mut good = GprModel::with_fixed(1.0, 1.0, 1e-2).unwrap();
        good.fit(&x, &y).unwrap();
        let l_good = good.log_marginal_likelihood(&y).unwrap();
        let mut bad = GprModel::with_fixed(100.0, 0.5, 1e-4).unwrap();
        bad.fit(&x, &y).unwrap();
        let l_bad = bad.log_marginal_likelihood(&y).unwrap();
        assert!(l_good.is_finite() && l_bad.is_finite());
        assert!(l_good > l_bad);
    }

    #[test]
    fn error_paths() {
        let gpr = GprModel::default();
        assert!(matches!(gpr.predict(&[1.0]), Err(MlError::NotFitted)));
        let mut gpr = GprModel::default();
        let x = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(gpr.fit(&x, &[1.0, 2.0]).is_err());
        gpr.fit(&x, &[1.0]).unwrap();
        assert!(gpr.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn multifeature_fit() {
        // f(a, b) = a + 2b on a small grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                rows.push(vec![a as f64, b as f64]);
                y.push(a as f64 + 2.0 * b as f64);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut gpr = GprModel::default();
        gpr.fit(&x, &y).unwrap();
        let p = gpr.predict(&[1.5, 2.5]).unwrap();
        assert!((p - 6.5).abs() < 0.3, "{p}");
    }
}
