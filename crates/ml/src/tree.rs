use linalg::Matrix;

use crate::convert::count_f64;
use crate::params::{ModelParams, ParamReader};
use crate::{MlError, Regressor};

/// CART regression tree — the paper's `RTREE` baseline.
///
/// Greedy binary splitting on the single `(feature, threshold)` pair that
/// maximizes variance reduction, with the usual stopping rules (`max_depth`,
/// `min_samples_split`, `min_samples_leaf`, zero-variance nodes). Thresholds
/// are midpoints between consecutive sorted feature values, matching
/// MATLAB `fitrtree` / scikit-learn behaviour.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{Regressor, TreeModel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A step function is a tree's best case.
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]])?;
/// let y = [5.0, 5.0, 5.0, -3.0, -3.0, -3.0];
/// let mut tree = TreeModel::default();
/// tree.fit(&x, &y)?;
/// assert_eq!(tree.predict(&[1.5])?, 5.0);
/// assert_eq!(tree.predict(&[11.5])?, -3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TreeModel {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child after a split.
    pub min_samples_leaf: usize,
    root: Option<Node>,
    n_features: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Default for TreeModel {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 1,
            root: None,
            n_features: 0,
        }
    }
}

impl TreeModel {
    /// Creates a tree with the given depth cap, keeping the other defaults.
    #[must_use]
    pub fn with_max_depth(max_depth: usize) -> Self {
        Self {
            max_depth,
            ..Self::default()
        }
    }

    /// Creates an unfitted tree with explicit stopping hyperparameters.
    pub(crate) fn with_hyperparams(
        max_depth: usize,
        min_samples_split: usize,
        min_samples_leaf: usize,
    ) -> Self {
        Self {
            max_depth,
            min_samples_split,
            min_samples_leaf,
            ..Self::default()
        }
    }

    /// Number of leaves (0 before fitting) — a size diagnostic.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// Rebuilds a fitted tree from exported parameters (the inverse of
    /// [`TreeModel::write_params`]).
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let tree = Self::read_params(&mut r)?;
        r.finish()?;
        Ok(tree)
    }

    /// Appends this fitted tree's state to a shared parameter stream.
    ///
    /// Layout: ints = `[max_depth, min_samples_split, min_samples_leaf,
    /// n_features]` followed by the preorder node tags (`0` for a leaf, `1
    /// feature` for a split); floats = one preorder value per node (leaf
    /// value or split threshold). The preorder encoding is self-delimiting,
    /// so [`ForestModel`](crate::ForestModel) can nest member trees in its
    /// own stream without framing.
    pub(crate) fn write_params(&self, out: &mut ModelParams) -> Result<(), MlError> {
        fn write_node(node: &Node, out: &mut ModelParams) {
            match node {
                Node::Leaf { value } => {
                    out.ints.push(0);
                    out.floats.push(*value);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.ints.push(1);
                    out.push_count(*feature);
                    out.floats.push(*threshold);
                    write_node(left, out);
                    write_node(right, out);
                }
            }
        }
        let root = self.root.as_ref().ok_or(MlError::NotFitted)?;
        out.push_count(self.max_depth);
        out.push_count(self.min_samples_split);
        out.push_count(self.min_samples_leaf);
        out.push_count(self.n_features);
        write_node(root, out);
        Ok(())
    }

    /// Drains one fitted tree from a shared parameter stream.
    pub(crate) fn read_params(r: &mut ParamReader<'_>) -> Result<Self, MlError> {
        fn read_node(r: &mut ParamReader<'_>, depth: usize, cap: usize) -> Result<Node, MlError> {
            // Every fitted tree respects its own max_depth; a stream nesting
            // deeper is corrupt. The hard cap bounds decode recursion.
            if depth > cap {
                return Err(MlError::Numerical {
                    context: "model params: tree nesting too deep",
                });
            }
            match r.int()? {
                0 => Ok(Node::Leaf { value: r.float()? }),
                1 => {
                    let feature = r.count()?;
                    let threshold = r.float()?;
                    let left = Box::new(read_node(r, depth + 1, cap)?);
                    let right = Box::new(read_node(r, depth + 1, cap)?);
                    Ok(Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    })
                }
                _ => Err(MlError::Numerical {
                    context: "model params: unknown tree node tag",
                }),
            }
        }
        let max_depth = r.count()?;
        let min_samples_split = r.count()?;
        let min_samples_leaf = r.count()?;
        let n_features = r.count()?;
        let root = read_node(r, 0, max_depth.min(512))?;
        Ok(Self {
            max_depth,
            min_samples_split,
            min_samples_leaf,
            root: Some(root),
            n_features,
        })
    }

    fn build(&self, x: &Matrix, y: &[f64], idx: &[usize], depth: usize) -> Node {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / count_f64(idx.len());
        let sse: f64 = idx.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();
        if depth >= self.max_depth || idx.len() < self.min_samples_split || sse < 1e-12 {
            return Node::Leaf { value: mean };
        }

        // Best split by variance (SSE) reduction.
        let mut best: Option<(f64, usize, f64)> = None; // (child_sse, feature, threshold)
        let mut sorted = idx.to_vec();
        for feature in 0..x.cols() {
            sorted.sort_by(|&a, &b| x.get(a, feature).total_cmp(&x.get(b, feature)));
            // Prefix sums over the sorted order for O(1) child statistics.
            let mut prefix_sum = 0.0;
            let mut prefix_sq = 0.0;
            let total_sum: f64 = sorted.iter().map(|&i| y[i]).sum();
            let total_sq: f64 = sorted.iter().map(|&i| y[i] * y[i]).sum();
            for split_at in 1..sorted.len() {
                let i_prev = sorted[split_at - 1];
                prefix_sum += y[i_prev];
                prefix_sq += y[i_prev] * y[i_prev];
                let a = x.get(i_prev, feature);
                let b = x.get(sorted[split_at], feature);
                if a == b {
                    continue; // cannot separate identical values
                }
                let n_left = split_at;
                let n_right = sorted.len() - split_at;
                if n_left < self.min_samples_leaf || n_right < self.min_samples_leaf {
                    continue;
                }
                let left_sse = prefix_sq - prefix_sum * prefix_sum / count_f64(n_left);
                let right_sum = total_sum - prefix_sum;
                let right_sse = (total_sq - prefix_sq) - right_sum * right_sum / count_f64(n_right);
                let child = left_sse + right_sse;
                if best.as_ref().is_none_or(|(s, _, _)| child < *s) {
                    best = Some((child, feature, 0.5 * (a + b)));
                }
            }
        }

        match best {
            Some((child_sse, feature, threshold)) if child_sse < sse - 1e-12 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x.get(i, feature) <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(x, y, &left_idx, depth + 1)),
                    right: Box::new(self.build(x, y, &right_idx, depth + 1)),
                }
            }
            _ => Node::Leaf { value: mean },
        }
    }
}

impl Regressor for TreeModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let idx: Vec<usize> = (0..x.rows()).collect();
        self.root = Some(self.build(x, y, &idx, 0));
        self.n_features = x.cols();
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        let mut node = self.root.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: self.n_features,
                actual: x.len(),
                what: "features",
            });
        }
        loop {
            match node {
                Node::Leaf { value } => return Ok(*value),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "RTREE"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        let mut p = ModelParams::new();
        self.write_params(&mut p)?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_on_step_function() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[5.0], &[6.0], &[7.0]]).unwrap();
        let y = [1.0, 1.0, 1.0, 9.0, 9.0, 9.0];
        let mut t = TreeModel::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[0.5]).unwrap(), 1.0);
        assert_eq!(t.predict(&[6.5]).unwrap(), 9.0);
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn depth_zero_predicts_mean() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [0.0, 1.0, 2.0, 3.0];
        let mut t = TreeModel::with_max_depth(0);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[0.0]).unwrap(), 1.5);
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [0.0, 0.0, 0.0, 10.0];
        let mut t = TreeModel {
            min_samples_leaf: 2,
            ..TreeModel::default()
        };
        t.fit(&x, &y).unwrap();
        // The 3-vs-1 split is forbidden; best legal split is 2-2.
        assert_eq!(t.predict(&[0.2]).unwrap(), 0.0);
        assert_eq!(t.predict(&[2.9]).unwrap(), 5.0);
    }

    #[test]
    fn multifeature_split_selection() {
        // Feature 1 is pure noise; feature 0 defines the target.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..16 {
            rows.push(vec![(i / 8) as f64, (i % 4) as f64]);
            y.push(if i / 8 == 0 { -1.0 } else { 1.0 });
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut t = TreeModel::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[0.0, 3.0]).unwrap(), -1.0);
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), 1.0);
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn identical_features_cannot_split() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0]]).unwrap();
        let y = [0.0, 1.0, 2.0, 3.0];
        let mut t = TreeModel::default();
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&[1.0]).unwrap(), 1.5);
    }

    #[test]
    fn error_paths() {
        let mut t = TreeModel::default();
        assert!(matches!(t.predict(&[0.0]), Err(MlError::NotFitted)));
        let x = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(t.fit(&x, &[1.0, 2.0]).is_err());
        t.fit(&x, &[1.0]).unwrap();
        assert!(t.predict(&[1.0, 2.0]).is_err());
    }
}
