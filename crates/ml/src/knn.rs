use linalg::Matrix;

use crate::params::ParamReader;
use crate::{MlError, ModelParams, Regressor};

/// k-nearest-neighbours regression with inverse-distance weighting.
///
/// A non-parametric extension baseline: the paper's thesis is that optimal
/// parameters of *similar problem instances* transfer, and kNN is the most
/// literal implementation of that idea — predict a new instance's parameters
/// as a weighted average of the most similar training instances. Comparing
/// it against GPR (the paper's winner) quantifies how much the smoothness
/// prior of a kernel model adds over raw instance lookup.
///
/// Prediction is `ŷ = Σ wᵢ yᵢ / Σ wᵢ` over the `k` nearest training rows in
/// Euclidean distance with `wᵢ = 1 / (dᵢ + ε)`. An exact feature match
/// returns that row's target directly.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{KnnModel, Regressor};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]])?;
/// let y = [0.0, 1.0, 2.0, 3.0];
/// let mut model = KnnModel::new(2);
/// model.fit(&x, &y)?;
/// let p = model.predict(&[1.4])?;
/// assert!(p > 1.0 && p < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnModel {
    /// Number of neighbours consulted per prediction (clamped to the
    /// training-set size at fit time).
    pub k: usize,
    x: Option<Matrix>,
    y: Vec<f64>,
}

impl KnnModel {
    /// Creates an unfitted model that will consult `k` neighbours.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            x: None,
            y: Vec::new(),
        }
    }

    /// Number of stored training samples (0 before `fit`).
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.y.len()
    }

    /// Rebuilds a fitted model from exported parameters.
    ///
    /// Layout: ints = `[k, rows, cols]`, floats = training rows in
    /// row-major order (`rows·cols` values) followed by the `rows` targets.
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let k = r.count()?;
        let rows = r.count()?;
        let cols = r.count()?;
        if k == 0 || rows == 0 {
            return Err(MlError::Numerical {
                context: "model params: empty kNN training set",
            });
        }
        let cells = rows.checked_mul(cols).ok_or(MlError::Numerical {
            context: "model params: kNN shape overflow",
        })?;
        let xdata = r.floats(cells)?;
        let x = Matrix::from_fn(rows, cols, |i, j| xdata[i * cols + j]);
        let y = r.floats(rows)?.to_vec();
        r.finish()?;
        Ok(Self { k, x: Some(x), y })
    }
}

impl Default for KnnModel {
    fn default() -> Self {
        Self::new(5)
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Regressor for KnnModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        if self.k == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "k",
                value: 0.0,
            });
        }
        self.x = Some(x.clone());
        self.y = y.to_vec();
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        let train = self.x.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() != train.cols() {
            return Err(MlError::ShapeMismatch {
                expected: train.cols(),
                actual: x.len(),
                what: "features",
            });
        }
        let k = self.k.min(train.rows());
        // Partial selection of the k smallest distances.
        let mut dist: Vec<(f64, usize)> = (0..train.rows())
            .map(|i| (sq_dist(train.row(i), x), i))
            .collect();
        dist.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        dist.truncate(k);

        let mut num = 0.0;
        let mut den = 0.0;
        for &(d2, i) in &dist {
            let d = d2.sqrt();
            if d < 1e-12 {
                // Exact match short-circuits to that training target.
                return Ok(self.y[i]);
            }
            let w = 1.0 / (d + 1e-12);
            num += w * self.y[i];
            den += w;
        }
        Ok(num / den)
    }

    fn name(&self) -> &'static str {
        "kNN"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        let x = self.x.as_ref().ok_or(MlError::NotFitted)?;
        let mut p = ModelParams::new();
        p.push_count(self.k);
        p.push_count(x.rows());
        p.push_count(x.cols());
        for i in 0..x.rows() {
            p.floats.extend_from_slice(x.row(i));
        }
        p.floats.extend_from_slice(&self.y);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn exact_match_returns_training_target() {
        let (x, y) = line_data();
        let mut m = KnnModel::new(3);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict(&[4.0]).unwrap(), 8.0);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let (x, y) = line_data();
        let mut m = KnnModel::new(2);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[4.5]).unwrap();
        assert!((p - 9.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn k_one_is_nearest_neighbour() {
        let (x, y) = line_data();
        let mut m = KnnModel::new(1);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict(&[4.4]).unwrap(), 8.0);
        assert_eq!(m.predict(&[4.6]).unwrap(), 10.0);
    }

    #[test]
    fn k_larger_than_dataset_clamped() {
        let (x, y) = line_data();
        let mut m = KnnModel::new(100);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[4.5]).unwrap();
        assert!(p.is_finite());
        // Inverse-distance weighting keeps the estimate near the query.
        assert!((p - 9.0).abs() < 2.0, "{p}");
    }

    #[test]
    fn constant_targets_reproduced() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y = vec![7.0; 6];
        let mut m = KnnModel::default();
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[2.5, 5.0]).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn errors() {
        let mut m = KnnModel::default();
        assert!(matches!(m.predict(&[1.0]), Err(MlError::NotFitted)));
        let (x, y) = line_data();
        let mut zero = KnnModel::new(0);
        assert!(matches!(
            zero.fit(&x, &y),
            Err(MlError::InvalidHyperparameter { .. })
        ));
        let empty = Matrix::zeros(0, 1);
        assert!(matches!(m.fit(&empty, &[]), Err(MlError::EmptyTrainingSet)));
        m.fit(&x, &y).unwrap();
        assert!(matches!(
            m.predict(&[1.0, 2.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }
}
