use linalg::Matrix;

use crate::MlError;

/// The squared-exponential (RBF) covariance kernel
/// `k(a, b) = σ_f² · exp(−‖a − b‖² / 2ℓ²)`.
///
/// This is MATLAB `fitrgp`'s default (`'squaredexponential'`) and drives
/// both [`GprModel`](crate::GprModel) and the RBF flavour of
/// [`SvrModel`](crate::SvrModel).
///
/// # Example
///
/// ```
/// use ml::RbfKernel;
/// # fn main() -> Result<(), ml::MlError> {
/// let k = RbfKernel::new(1.0, 1.0)?;
/// assert_eq!(k.eval(&[0.0], &[0.0]), 1.0);           // k(x, x) = σ_f²
/// assert!(k.eval(&[0.0], &[10.0]) < 1e-20);          // far points decorrelate
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    length_scale: f64,
    signal_variance: f64,
}

impl RbfKernel {
    /// Creates a kernel with length scale `ℓ` and signal standard deviation
    /// `σ_f` (stored squared).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] unless both are positive
    /// and finite.
    pub fn new(length_scale: f64, signal_std: f64) -> Result<Self, MlError> {
        if !(length_scale.is_finite() && length_scale > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "length_scale",
                value: length_scale,
            });
        }
        if !(signal_std.is_finite() && signal_std > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "signal_std",
                value: signal_std,
            });
        }
        Ok(Self {
            length_scale,
            signal_variance: signal_std * signal_std,
        })
    }

    /// Rebuilds a kernel from a stored (length scale, signal **variance**)
    /// pair without the square/sqrt round trip of [`RbfKernel::new`], so a
    /// persisted kernel evaluates bit-identically to the original.
    pub(crate) fn from_parts(length_scale: f64, signal_variance: f64) -> Result<Self, MlError> {
        if !(length_scale.is_finite() && length_scale > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "length_scale",
                value: length_scale,
            });
        }
        if !(signal_variance.is_finite() && signal_variance > 0.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "signal_variance",
                value: signal_variance,
            });
        }
        Ok(Self {
            length_scale,
            signal_variance,
        })
    }

    /// The length scale ℓ.
    #[must_use]
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// The signal variance σ_f².
    #[must_use]
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel input length mismatch");
        let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.signal_variance * (-0.5 * sq / (self.length_scale * self.length_scale)).exp()
    }

    /// The Gram matrix `K[i][j] = k(xᵢ, xⱼ)` over the rows of `x`.
    #[must_use]
    pub fn gram(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            k.set(i, i, self.signal_variance);
            for j in (i + 1)..n {
                let v = self.eval(x.row(i), x.row(j));
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        k
    }

    /// The cross-covariance vector `k(x*, xᵢ)` against every row of `x`.
    #[must_use]
    pub fn cross(&self, x: &Matrix, query: &[f64]) -> Vec<f64> {
        (0..x.rows()).map(|i| self.eval(x.row(i), query)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperparameter_validation() {
        assert!(RbfKernel::new(0.0, 1.0).is_err());
        assert!(RbfKernel::new(1.0, -1.0).is_err());
        assert!(RbfKernel::new(f64::NAN, 1.0).is_err());
        let k = RbfKernel::new(2.0, 3.0).unwrap();
        assert_eq!(k.length_scale(), 2.0);
        assert_eq!(k.signal_variance(), 9.0);
    }

    #[test]
    fn kernel_values() {
        let k = RbfKernel::new(1.0, 1.0).unwrap();
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        // Distance 1 -> e^{-1/2}.
        assert!((k.eval(&[0.0], &[1.0]) - (-0.5_f64).exp()).abs() < 1e-15);
        // Symmetry.
        assert_eq!(k.eval(&[0.3], &[1.7]), k.eval(&[1.7], &[0.3]));
    }

    #[test]
    fn longer_scale_means_smoother() {
        let short = RbfKernel::new(0.5, 1.0).unwrap();
        let long = RbfKernel::new(5.0, 1.0).unwrap();
        assert!(long.eval(&[0.0], &[1.0]) > short.eval(&[0.0], &[1.0]));
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[3.0]]).unwrap();
        let k = RbfKernel::new(1.0, 1.0).unwrap();
        let g = k.gram(&x);
        assert_eq!(g.asymmetry(), 0.0);
        for i in 0..3 {
            assert_eq!(g.get(i, i), 1.0);
        }
        // Gram + jitter must be positive definite.
        let mut gj = g;
        gj.add_diagonal(1e-9);
        assert!(gj.cholesky().is_ok());
    }

    #[test]
    fn cross_matches_eval() {
        let x = Matrix::from_rows(&[&[0.0], &[2.0]]).unwrap();
        let k = RbfKernel::new(1.0, 2.0).unwrap();
        let c = k.cross(&x, &[1.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], k.eval(&[0.0], &[1.0]));
        assert_eq!(c[1], k.eval(&[2.0], &[1.0]));
    }
}
