use linalg::{Matrix, Vector};

use crate::params::ParamReader;
use crate::{MlError, ModelParams, Regressor};

/// Ordinary least squares with an intercept — the paper's `LM` baseline.
///
/// Solves `min ‖[1 X] β − y‖₂` through the Householder QR of the augmented
/// design matrix (numerically safer than the normal equations). When the
/// design matrix is rank-deficient it falls back to a tiny ridge penalty so
/// degenerate datasets still produce a usable fit.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{LinearModel, Regressor};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Plane y = 1 + 2a - b through six exact samples.
/// let x = Matrix::from_rows(&[
///     &[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0],
///     &[1.0, 1.0], &[2.0, 0.0], &[0.0, 2.0],
/// ])?;
/// let y: Vec<f64> = (0..6).map(|i| 1.0 + 2.0 * x.get(i, 0) - x.get(i, 1)).collect();
/// let mut lm = LinearModel::new();
/// lm.fit(&x, &y)?;
/// assert!((lm.predict(&[3.0, 1.0])? - 6.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearModel {
    /// `[intercept, coef_1, …, coef_d]` once fitted.
    coefficients: Option<Vec<f64>>,
}

impl LinearModel {
    /// Creates an unfitted model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted coefficients `[intercept, coef…]`, if any.
    #[must_use]
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.coefficients.as_deref()
    }

    /// Rebuilds a fitted model from exported parameters.
    ///
    /// Layout: ints = `[len]`, floats = `[intercept, coef…]` (`len` values).
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let len = r.count()?;
        if len == 0 {
            return Err(MlError::Numerical {
                context: "model params: empty coefficient vector",
            });
        }
        let beta = r.floats(len)?.to_vec();
        r.finish()?;
        Ok(Self {
            coefficients: Some(beta),
        })
    }

    fn design(x: &Matrix) -> Matrix {
        Matrix::from_fn(x.rows(), x.cols() + 1, |i, j| {
            if j == 0 {
                1.0
            } else {
                x.get(i, j - 1)
            }
        })
    }
}

impl Regressor for LinearModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let a = Self::design(x);
        let yv = Vector::from(y);
        // QR least squares; under-determined or rank-deficient systems fall
        // back to ridge-regularized normal equations.
        let solved = if a.rows() >= a.cols() {
            a.qr().ok().and_then(|qr| qr.solve_least_squares(&yv).ok())
        } else {
            None
        };
        let beta = match solved {
            Some(b) => b,
            None => {
                let mut gram = a.gram();
                gram.add_diagonal(1e-8);
                let rhs = a.matvec_t(&yv)?;
                gram.cholesky()?.solve(&rhs)?
            }
        };
        self.coefficients = Some(beta.into_vec());
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        let beta = self.coefficients.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() + 1 != beta.len() {
            return Err(MlError::ShapeMismatch {
                expected: beta.len() - 1,
                actual: x.len(),
                what: "features",
            });
        }
        Ok(beta[0]
            + x.iter()
                .zip(&beta[1..])
                .map(|(xi, bi)| xi * bi)
                .sum::<f64>())
    }

    fn name(&self) -> &'static str {
        "LM"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        let beta = self.coefficients.as_ref().ok_or(MlError::NotFitted)?;
        let mut p = ModelParams::new();
        p.push_count(beta.len());
        p.floats.extend_from_slice(beta);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_planted_line() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [5.0, 7.0, 9.0, 11.0]; // y = 5 + 2x
        let mut lm = LinearModel::new();
        lm.fit(&x, &y).unwrap();
        let c = lm.coefficients().unwrap();
        assert!((c[0] - 5.0).abs() < 1e-10);
        assert!((c[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_orthogonality() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [0.1, 0.9, 2.2, 2.8]; // noisy line
        let mut lm = LinearModel::new();
        lm.fit(&x, &y).unwrap();
        let preds = lm.predict_batch(&x).unwrap();
        // Residuals sum to zero (intercept column orthogonality).
        let resid_sum: f64 = y.iter().zip(&preds).map(|(t, p)| t - p).sum();
        assert!(resid_sum.abs() < 1e-10);
    }

    #[test]
    fn underdetermined_falls_back_to_ridge() {
        // 2 samples, 3 features: rank-deficient design.
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]]).unwrap();
        let y = [1.0, 2.0];
        let mut lm = LinearModel::new();
        lm.fit(&x, &y).unwrap();
        // In-sample predictions still close.
        let p = lm.predict_batch(&x).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-3);
        assert!((p[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn error_paths() {
        let mut lm = LinearModel::new();
        assert!(matches!(lm.predict(&[1.0]), Err(MlError::NotFitted)));
        let x = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(matches!(
            lm.fit(&x, &[1.0, 2.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        lm.fit(&x, &[1.0]).unwrap();
        assert!(matches!(
            lm.predict(&[1.0, 2.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn constant_target() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let mut lm = LinearModel::new();
        lm.fit(&x, &[4.0, 4.0, 4.0]).unwrap();
        assert!((lm.predict(&[10.0]).unwrap() - 4.0).abs() < 1e-9);
    }
}
