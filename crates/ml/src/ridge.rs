use linalg::{Cholesky, Matrix, Vector};

use crate::convert::count_f64;
use crate::params::ParamReader;
use crate::{MlError, ModelParams, Regressor};

/// Ridge (Tikhonov-regularized least-squares) regression.
///
/// An extension beyond the paper's four models: the paper's linear model
/// (`fitlm`) is unregularized OLS, which degrades when the predictors are
/// strongly collinear — and Fig. 5 shows `γ₁OPT(p=1)` and `β₁OPT(p=1)`
/// correlate at R ≈ 0.92, exactly the regime where a ridge penalty helps.
/// The `model_compare` binary reports it alongside the paper's models.
///
/// Features and targets are centered internally, so the penalty does not
/// shrink the intercept. The normal equations
/// `(Xᶜᵀ Xᶜ + λ n I) w = Xᶜᵀ yᶜ` are solved by Cholesky factorization.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{Regressor, RidgeModel};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Near-duplicate predictors: OLS is ill-posed, ridge is stable.
/// let x = Matrix::from_rows(&[
///     &[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0], &[4.0, 4.0 + 1e-9],
/// ])?;
/// let y = [2.0, 4.0, 6.0, 8.0];
/// let mut model = RidgeModel::new(1e-3);
/// model.fit(&x, &y)?;
/// let pred = model.predict(&[5.0, 5.0])?;
/// assert!((pred - 10.0).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeModel {
    /// Regularization strength λ ≥ 0 (λ = 0 recovers OLS on full-rank data).
    pub lambda: f64,
    weights: Option<Vec<f64>>,
    intercept: f64,
    x_mean: Vec<f64>,
}

impl RidgeModel {
    /// Creates an unfitted model with regularization strength `lambda`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        Self {
            lambda,
            weights: None,
            intercept: 0.0,
            x_mean: Vec::new(),
        }
    }

    /// Fitted coefficients (one per feature), or `None` before `fit`.
    #[must_use]
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Fitted intercept; meaningful only after `fit`.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Rebuilds a fitted model from exported parameters.
    ///
    /// Layout: ints = `[n_weights]`, floats = `[lambda, intercept,
    /// weight…]`. The feature means are a fit-time intermediate and are not
    /// persisted; prediction only needs the weights and intercept.
    pub(crate) fn from_params(params: &ModelParams) -> Result<Self, MlError> {
        let mut r = ParamReader::new(params);
        let n_weights = r.count()?;
        let lambda = r.float()?;
        let intercept = r.float()?;
        let weights = r.floats(n_weights)?.to_vec();
        r.finish()?;
        Ok(Self {
            lambda,
            weights: Some(weights),
            intercept,
            x_mean: Vec::new(),
        })
    }
}

impl Default for RidgeModel {
    fn default() -> Self {
        Self::new(1e-4)
    }
}

impl Regressor for RidgeModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), MlError> {
        if x.rows() == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                expected: x.rows(),
                actual: y.len(),
                what: "samples",
            });
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(MlError::InvalidHyperparameter {
                name: "lambda",
                value: self.lambda,
            });
        }
        let n = x.rows();
        let d = x.cols();

        let mut x_mean = vec![0.0; d];
        for i in 0..n {
            for (j, m) in x_mean.iter_mut().enumerate() {
                *m += x.get(i, j);
            }
        }
        for m in &mut x_mean {
            *m /= count_f64(n);
        }
        let y_mean = y.iter().sum::<f64>() / count_f64(n);

        // Centered Gram matrix Xᶜᵀ Xᶜ + λ n I and moment vector Xᶜᵀ yᶜ.
        let mut gram = Matrix::zeros(d, d);
        let mut moment = vec![0.0; d];
        for (i, &yi) in y.iter().enumerate() {
            let row = x.row(i);
            let yc = yi - y_mean;
            for a in 0..d {
                let xa = row[a] - x_mean[a];
                moment[a] += xa * yc;
                for b in a..d {
                    let xb = row[b] - x_mean[b];
                    let v = gram.get(a, b) + xa * xb;
                    gram.set(a, b, v);
                }
            }
        }
        for a in 0..d {
            for b in 0..a {
                let v = gram.get(b, a);
                gram.set(a, b, v);
            }
        }
        gram.add_diagonal(self.lambda * count_f64(n) + 1e-12);

        let chol = Cholesky::new(&gram).map_err(|_| MlError::Numerical {
            context: "ridge normal equations",
        })?;
        let w = chol
            .solve(&Vector::from(moment))
            .map_err(|_| MlError::Numerical {
                context: "ridge solve",
            })?;
        let w: Vec<f64> = w.iter().copied().collect();

        self.intercept = y_mean - w.iter().zip(&x_mean).map(|(wi, mi)| wi * mi).sum::<f64>();
        self.x_mean = x_mean;
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<f64, MlError> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        if x.len() != w.len() {
            return Err(MlError::ShapeMismatch {
                expected: w.len(),
                actual: x.len(),
                what: "features",
            });
        }
        Ok(self.intercept + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>())
    }

    fn name(&self) -> &'static str {
        "Ridge"
    }

    fn to_params(&self) -> Result<ModelParams, MlError> {
        let w = self.weights.as_ref().ok_or(MlError::NotFitted)?;
        let mut p = ModelParams::new();
        p.push_count(w.len());
        p.floats.push(self.lambda);
        p.floats.push(self.intercept);
        p.floats.extend_from_slice(w);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line_with_tiny_lambda() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [1.0, 3.0, 5.0, 7.0];
        let mut m = RidgeModel::new(1e-10);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[4.0]).unwrap() - 9.0).abs() < 1e-6);
        assert!((m.coefficients().unwrap()[0] - 2.0).abs() < 1e-6);
        assert!((m.intercept() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shrinks_with_large_lambda() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let y = [1.0, 3.0, 5.0, 7.0];
        let mut weak = RidgeModel::new(1e-10);
        let mut strong = RidgeModel::new(100.0);
        weak.fit(&x, &y).unwrap();
        strong.fit(&x, &y).unwrap();
        let w_weak = weak.coefficients().unwrap()[0].abs();
        let w_strong = strong.coefficients().unwrap()[0].abs();
        assert!(w_strong < w_weak);
        // Heavily shrunk model predicts close to the target mean.
        assert!((strong.predict(&[1.5]).unwrap() - 4.0).abs() < 1.0);
    }

    #[test]
    fn collinear_features_stable() {
        // Perfectly duplicated columns break OLS normal equations; ridge is fine.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0], &[4.0, 4.0]]).unwrap();
        let y = [2.0, 4.0, 6.0, 8.0];
        let mut m = RidgeModel::new(1e-6);
        m.fit(&x, &y).unwrap();
        let p = m.predict(&[5.0, 5.0]).unwrap();
        assert!((p - 10.0).abs() < 1e-2, "{p}");
        // Symmetry: the two identical columns get equal weight.
        let w = m.coefficients().unwrap();
        assert!((w[0] - w[1]).abs() < 1e-6);
    }

    #[test]
    fn multifeature_plane() {
        // y = 1 + 2 x0 − 3 x1 on a grid.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f64, j as f64]);
                y.push(1.0 + 2.0 * i as f64 - 3.0 * j as f64);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = RidgeModel::new(1e-9);
        m.fit(&x, &y).unwrap();
        assert!((m.predict(&[2.0, 2.0]).unwrap() - (1.0 + 4.0 - 6.0)).abs() < 1e-5);
    }

    #[test]
    fn errors() {
        let mut m = RidgeModel::default();
        assert!(matches!(m.predict(&[1.0]), Err(MlError::NotFitted)));
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        assert!(matches!(
            m.fit(&x, &[1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        let empty = Matrix::zeros(0, 1);
        assert!(matches!(m.fit(&empty, &[]), Err(MlError::EmptyTrainingSet)));
        let mut bad = RidgeModel::new(-1.0);
        assert!(matches!(
            bad.fit(&x, &[1.0, 2.0]),
            Err(MlError::InvalidHyperparameter { .. })
        ));
    }

    #[test]
    fn wrong_feature_count_rejected() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[2.0, 2.0]]).unwrap();
        let mut m = RidgeModel::default();
        m.fit(&x, &[1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            m.predict(&[1.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }
}
