//! The serializable parameter surface behind every fitted model.
//!
//! A fitted [`Regressor`](crate::Regressor) exports its complete learned
//! state as a [`ModelParams`] — one integer stream (shapes, hyperparameter
//! counts, tree structure tags) and one float stream (weights, thresholds,
//! training rows) — and [`ModelKind::from_params`](crate::ModelKind::from_params)
//! rebuilds a model whose predictions are **bit-identical** to the
//! original's. The two streams stay separate so no count is ever squeezed
//! through a float (and back) on the way to disk; the `QMODEL1` artifact
//! format in the engine crate persists both losslessly.
//!
//! Decoding is deliberately strict: a truncated stream, a count that does
//! not fit `usize`, or trailing unread values all fail with
//! [`MlError::Numerical`] rather than producing a silently different model.

use crate::MlError;

/// The learned state of one fitted model, flattened into an integer stream
/// and a float stream.
///
/// The encoding is model-specific (each model documents its own layout on
/// its `from_params` constructor) but always self-delimiting: the streams
/// carry their own shape information, so nested structures (forest members,
/// tree nodes) need no external framing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelParams {
    /// Shape and structure fields: dimensions, hyperparameter counts,
    /// tree-node tags, RNG seeds.
    pub ints: Vec<u64>,
    /// Learned weights: coefficients, thresholds, training rows, duals.
    pub floats: Vec<f64>,
}

impl ModelParams {
    /// An empty parameter set (both streams empty).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `usize` shape field to the integer stream.
    pub(crate) fn push_count(&mut self, n: usize) {
        // usize -> u64 is value-preserving on every supported target (the
        // fallback is unreachable; written cast-free for the lint ratchet).
        self.ints.push(u64::try_from(n).unwrap_or(u64::MAX));
    }
}

const TRUNCATED: MlError = MlError::Numerical {
    context: "model params: stream truncated",
};
const TRAILING: MlError = MlError::Numerical {
    context: "model params: trailing unread values",
};

/// Sequential reader over a [`ModelParams`] pair of streams.
///
/// Every `from_params` constructor drains exactly the fields it wrote and
/// then calls [`ParamReader::finish`]; anything short or long is a decode
/// error, never a silently misaligned model.
pub(crate) struct ParamReader<'a> {
    ints: &'a [u64],
    floats: &'a [f64],
    next_int: usize,
    next_float: usize,
}

impl<'a> ParamReader<'a> {
    pub(crate) fn new(params: &'a ModelParams) -> Self {
        Self {
            ints: &params.ints,
            floats: &params.floats,
            next_int: 0,
            next_float: 0,
        }
    }

    /// Next raw integer field.
    pub(crate) fn int(&mut self) -> Result<u64, MlError> {
        let v = self.ints.get(self.next_int).copied().ok_or(TRUNCATED)?;
        self.next_int += 1;
        Ok(v)
    }

    /// Next integer field as a `usize` count.
    pub(crate) fn count(&mut self) -> Result<usize, MlError> {
        usize::try_from(self.int()?).map_err(|_| MlError::Numerical {
            context: "model params: count exceeds usize",
        })
    }

    /// Next float field.
    pub(crate) fn float(&mut self) -> Result<f64, MlError> {
        let v = self.floats.get(self.next_float).copied().ok_or(TRUNCATED)?;
        self.next_float += 1;
        Ok(v)
    }

    /// Next `n` float fields as a slice.
    pub(crate) fn floats(&mut self, n: usize) -> Result<&'a [f64], MlError> {
        let end = self.next_float.checked_add(n).ok_or(TRUNCATED)?;
        let s = self.floats.get(self.next_float..end).ok_or(TRUNCATED)?;
        self.next_float = end;
        Ok(s)
    }

    /// Asserts both streams are fully consumed.
    pub(crate) fn finish(self) -> Result<(), MlError> {
        if self.next_int == self.ints.len() && self.next_float == self.floats.len() {
            Ok(())
        } else {
            Err(TRAILING)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_drains_in_order() {
        let mut p = ModelParams::new();
        p.push_count(3);
        p.ints.push(u64::MAX);
        p.floats.extend([1.5, -2.5, 0.0]);
        let mut r = ParamReader::new(&p);
        assert_eq!(r.count().unwrap(), 3);
        assert_eq!(r.int().unwrap(), u64::MAX);
        assert_eq!(r.float().unwrap(), 1.5);
        assert_eq!(r.floats(2).unwrap(), &[-2.5, 0.0]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_are_errors() {
        let p = ModelParams::new();
        let mut r = ParamReader::new(&p);
        assert!(r.int().is_err());
        assert!(r.float().is_err());

        let mut p = ModelParams::new();
        p.floats.push(1.0);
        let mut r = ParamReader::new(&p);
        assert!(r.floats(2).is_err());

        let mut p = ModelParams::new();
        p.ints.push(7);
        assert!(ParamReader::new(&p).finish().is_err());
    }
}
