//! K-fold cross-validation for model selection.
//!
//! The paper selects GPR by comparing models on a held-out split; k-fold CV
//! is the standard refinement when the corpus is small (66 training graphs),
//! and backs the `model_compare` experiment with variance estimates.

use linalg::Matrix;

use crate::{metrics, MlError, ModelKind};

/// Per-fold and aggregate scores from one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvScores {
    /// MSE of each fold, in fold order.
    pub fold_mse: Vec<f64>,
    /// R² of each fold, in fold order.
    pub fold_r2: Vec<f64>,
}

impl CvScores {
    /// Mean MSE over folds.
    #[must_use]
    pub fn mean_mse(&self) -> f64 {
        metrics::mean(&self.fold_mse)
    }

    /// Standard deviation of fold MSEs.
    #[must_use]
    pub fn std_mse(&self) -> f64 {
        metrics::std_dev(&self.fold_mse)
    }

    /// Mean R² over folds.
    #[must_use]
    pub fn mean_r2(&self) -> f64 {
        metrics::mean(&self.fold_r2)
    }
}

/// Runs deterministic k-fold cross-validation of `kind` on `(x, y)`.
///
/// Folds are contiguous row blocks (shuffle beforehand for a randomized
/// split — [`Dataset::shuffled`](crate::Dataset::shuffled) composes well).
///
/// # Errors
///
/// * [`MlError::ShapeMismatch`] if `x.rows() != y.len()`.
/// * [`MlError::EmptyTrainingSet`] when a fold would leave no training rows
///   (requires `k >= 2` and `x.rows() >= k`).
/// * Any per-fold fitting error.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
/// use ml::{cross_validation::k_fold, ModelKind};
/// # fn main() -> Result<(), ml::MlError> {
/// let x = Matrix::from_fn(20, 1, |i, _| i as f64);
/// let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 + 1.0).collect();
/// let scores = k_fold(ModelKind::Linear, &x, &y, 4)?;
/// assert!(scores.mean_mse() < 1e-10); // exact line, perfect generalization
/// # Ok(())
/// # }
/// ```
pub fn k_fold(kind: ModelKind, x: &Matrix, y: &[f64], k: usize) -> Result<CvScores, MlError> {
    if x.rows() != y.len() {
        return Err(MlError::ShapeMismatch {
            expected: x.rows(),
            actual: y.len(),
            what: "samples",
        });
    }
    let n = x.rows();
    if k < 2 || n < k {
        return Err(MlError::EmptyTrainingSet);
    }
    let mut fold_mse = Vec::with_capacity(k);
    let mut fold_r2 = Vec::with_capacity(k);
    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let train_rows: Vec<usize> = (0..n).filter(|i| *i < lo || *i >= hi).collect();
        let test_rows: Vec<usize> = (lo..hi).collect();
        if test_rows.is_empty() {
            continue;
        }
        let xt = Matrix::from_fn(train_rows.len(), x.cols(), |i, j| x.get(train_rows[i], j));
        let yt: Vec<f64> = train_rows.iter().map(|&i| y[i]).collect();
        let xv = Matrix::from_fn(test_rows.len(), x.cols(), |i, j| x.get(test_rows[i], j));
        let yv: Vec<f64> = test_rows.iter().map(|&i| y[i]).collect();
        let mut model = kind.build();
        model.fit(&xt, &yt)?;
        let preds = model.predict_batch(&xv)?;
        fold_mse.push(metrics::mse(&yv, &preds)?);
        fold_r2.push(metrics::r2(&yv, &preds)?);
    }
    Ok(CvScores { fold_mse, fold_r2 })
}

/// Cross-validates every model family and returns `(kind, scores)` sorted
/// by ascending mean MSE (best first).
///
/// # Errors
///
/// Same conditions as [`k_fold`].
pub fn compare_models(
    x: &Matrix,
    y: &[f64],
    k: usize,
) -> Result<Vec<(ModelKind, CvScores)>, MlError> {
    let mut out = Vec::with_capacity(ModelKind::ALL.len());
    for kind in ModelKind::ALL {
        out.push((kind, k_fold(kind, x, y, k)?));
    }
    out.sort_by(|a, b| a.1.mean_mse().total_cmp(&b.1.mean_mse()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 0.37);
        let y: Vec<f64> = (0..n).map(|i| 3.0 - 0.5 * (i as f64 * 0.37)).collect();
        (x, y)
    }

    #[test]
    fn perfect_line_scores_perfectly() {
        let (x, y) = line_data(24);
        let s = k_fold(ModelKind::Linear, &x, &y, 6).unwrap();
        assert_eq!(s.fold_mse.len(), 6);
        assert!(s.mean_mse() < 1e-12);
        assert!(s.mean_r2() > 0.999);
        assert!(s.std_mse() < 1e-12);
    }

    #[test]
    fn fold_sizes_cover_all_rows() {
        // n not divisible by k: contiguous blocks still partition the data.
        let (x, y) = line_data(23);
        let s = k_fold(ModelKind::Tree, &x, &y, 5).unwrap();
        assert_eq!(s.fold_mse.len(), 5);
    }

    #[test]
    fn argument_validation() {
        let (x, y) = line_data(10);
        assert!(k_fold(ModelKind::Linear, &x, &y[..5], 2).is_err());
        assert!(k_fold(ModelKind::Linear, &x, &y, 1).is_err());
        assert!(k_fold(ModelKind::Linear, &x, &y, 11).is_err());
    }

    #[test]
    fn compare_ranks_linear_first_on_linear_data() {
        let (x, y) = line_data(30);
        let ranked = compare_models(&x, &y, 5).unwrap();
        assert_eq!(ranked.len(), 4);
        // The best model on an exact line must fit it essentially perfectly.
        assert!(ranked[0].1.mean_mse() < 1e-6, "{:?}", ranked[0].0);
        // Ordering is ascending in MSE.
        for pair in ranked.windows(2) {
            assert!(pair[0].1.mean_mse() <= pair[1].1.mean_mse());
        }
    }
}
