//! The crate's two sanctioned numeric casts.
//!
//! Every `usize`/count → `f64` conversion in the crate funnels through
//! [`count_f64`], and the one place a (bounded, non-negative) float becomes a
//! count again uses [`ceil_count`]. Centralizing the casts keeps the rest of
//! the crate free of `as` conversions, so the lint ratchet can hold the line
//! at zero lossy-cast findings for `ml`.

/// Converts a sample/feature count to `f64`.
///
/// Counts in this crate are bounded by in-memory dataset sizes, far below
/// 2^53, so the conversion is exact.
#[must_use]
pub(crate) fn count_f64(n: usize) -> f64 {
    // lint:allow(no-lossy-as) counts are < 2^53 so usize -> f64 is exact here
    n as f64
}

/// Rounds a non-negative, count-bounded float up to a `usize`.
///
/// Used for split sizes like `ceil(fraction * n)` where the input is clamped
/// to `[0, n]` for an in-memory count `n`.
#[must_use]
pub(crate) fn ceil_count(x: f64) -> usize {
    // lint:allow(no-lossy-as) input is a count-bounded non-negative float
    x.max(0.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_f64_is_exact_for_small_counts() {
        assert_eq!(count_f64(0), 0.0);
        assert_eq!(count_f64(330), 330.0);
        assert_eq!(count_f64(1 << 30), 1_073_741_824.0);
    }

    #[test]
    fn ceil_count_rounds_up_and_clamps_negatives() {
        assert_eq!(ceil_count(0.0), 0);
        assert_eq!(ceil_count(2.1), 3);
        assert_eq!(ceil_count(5.0), 5);
        assert_eq!(ceil_count(-1.5), 0);
    }
}
