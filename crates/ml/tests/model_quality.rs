//! Model-quality integration tests: the four regression families on
//! QAOA-parameter-shaped data (3 features, correlated targets), mirroring
//! the §III-C comparison at small scale.

use linalg::Matrix;
use ml::metrics::{mse, r2};
use ml::{GprModel, ModelKind, MultiOutput, Regressor, StandardScaler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic data with the paper's correlation structure:
/// γᵢ(p) ≈ a·γ₁ − b·p + noise, β correlated with γ₁.
fn paper_shaped(n: usize, noise: f64, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let g1: f64 = rng.gen_range(0.3..0.8);
        let b1: f64 = 0.55 * g1 + rng.gen_range(-0.03..0.03);
        let p: f64 = rng.gen_range(1..=6) as f64;
        rows.push(vec![g1, b1, p]);
        y.push(0.9 * g1 - 0.04 * p + 0.3 + noise * rng.gen_range(-1.0..1.0));
    }
    (Matrix::from_rows(&rows).expect("non-empty"), y)
}

#[test]
fn all_models_beat_the_mean_predictor() {
    let (x_train, y_train) = paper_shaped(66, 0.01, 1);
    let (x_test, y_test) = paper_shaped(100, 0.01, 2);
    let mean = y_train.iter().sum::<f64>() / y_train.len() as f64;
    let baseline = mse(&y_test, &vec![mean; y_test.len()]).expect("valid input");
    for kind in ModelKind::ALL {
        let mut model = kind.build();
        model.fit(&x_train, &y_train).expect("fit succeeds");
        let preds = model.predict_batch(&x_test).expect("predict succeeds");
        let err = mse(&y_test, &preds).expect("valid input");
        assert!(
            err < baseline * 0.5,
            "{kind}: mse {err} vs mean-baseline {baseline}"
        );
    }
}

#[test]
fn gpr_wins_on_smooth_low_noise_data() {
    // The paper selects GPR as its predictor; on smooth low-noise data GPR
    // should be at least competitive with every other family.
    let (x_train, y_train) = paper_shaped(66, 0.005, 3);
    let (x_test, y_test) = paper_shaped(120, 0.005, 4);
    let mut scores = Vec::new();
    for kind in ModelKind::ALL {
        let mut model = kind.build();
        model.fit(&x_train, &y_train).expect("fit succeeds");
        let preds = model.predict_batch(&x_test).expect("predict succeeds");
        scores.push((kind, mse(&y_test, &preds).expect("valid input")));
    }
    let gpr = scores
        .iter()
        .find(|(k, _)| *k == ModelKind::Gpr)
        .expect("GPR present")
        .1;
    for (kind, err) in &scores {
        assert!(
            gpr <= err * 1.5,
            "GPR mse {gpr} much worse than {kind} ({err})"
        );
    }
}

#[test]
fn r2_close_to_one_on_learnable_data() {
    let (x_train, y_train) = paper_shaped(66, 0.01, 5);
    let (x_test, y_test) = paper_shaped(80, 0.01, 6);
    let mut gpr = GprModel::default();
    gpr.fit(&x_train, &y_train).expect("fit succeeds");
    let preds = gpr.predict_batch(&x_test).expect("predict succeeds");
    let score = r2(&y_test, &preds).expect("valid input");
    assert!(score > 0.9, "GPR R² = {score}");
}

#[test]
fn multioutput_handles_paper_width() {
    // 12 response columns = the paper's deepest configuration (p = 6).
    let (x, base) = paper_shaped(50, 0.01, 7);
    let y = Matrix::from_fn(50, 12, |i, j| base[i] * (1.0 + 0.1 * j as f64));
    let mut model = MultiOutput::new(ModelKind::Linear);
    model.fit(&x, &y).expect("fit succeeds");
    assert_eq!(model.n_targets(), 12);
    let out = model.predict(x.row(0)).expect("predict succeeds");
    assert_eq!(out.len(), 12);
    // Scaled targets give scaled predictions.
    for j in 1..12 {
        let ratio = out[j] / out[0];
        assert!(
            (ratio - (1.0 + 0.1 * j as f64)).abs() < 0.05,
            "column {j}: {ratio}"
        );
    }
}

#[test]
fn standardization_does_not_change_gpr_ranking() {
    // GPR standardizes internally; feeding externally-standardized features
    // must preserve prediction ordering.
    let (x, y) = paper_shaped(40, 0.01, 8);
    let scaler = StandardScaler::fit(&x).expect("non-empty");
    let xs = scaler.transform(&x).expect("matching width");
    let mut raw = GprModel::default();
    raw.fit(&x, &y).expect("fit succeeds");
    let mut standardized = GprModel::default();
    standardized.fit(&xs, &y).expect("fit succeeds");
    let a = raw.predict(x.row(0)).expect("predict succeeds");
    let b = standardized
        .predict(&scaler.transform_row(x.row(0)).expect("matching width"))
        .expect("predict succeeds");
    assert!((a - b).abs() < 0.05, "{a} vs {b}");
}

#[test]
fn tree_depth_controls_capacity() {
    let (x, y) = paper_shaped(60, 0.0, 9);
    let mut shallow = ml::TreeModel::with_max_depth(1);
    shallow.fit(&x, &y).expect("fit succeeds");
    let mut deep = ml::TreeModel::with_max_depth(10);
    deep.fit(&x, &y).expect("fit succeeds");
    assert!(deep.n_leaves() > shallow.n_leaves());
    let shallow_err = mse(&y, &shallow.predict_batch(&x).expect("ok")).expect("ok");
    let deep_err = mse(&y, &deep.predict_batch(&x).expect("ok")).expect("ok");
    assert!(deep_err <= shallow_err);
}
