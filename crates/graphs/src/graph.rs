use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// An undirected weighted edge `(u, v, w)` with `u < v`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight (1.0 for the unweighted graphs used in the paper).
    pub weight: f64,
}

/// A simple undirected graph with `f64` edge weights.
///
/// Nodes are `0..n_nodes`. Parallel edges are rejected by keeping at most
/// one edge per unordered pair; self-loops are errors. The representation is
/// an edge list plus an adjacency-set index, which suits both the QAOA
/// circuit construction (iterate edges) and generators (membership tests).
///
/// # Example
///
/// ```
/// use graphs::Graph;
/// # fn main() -> Result<(), graphs::GraphError> {
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1)?;
/// g.add_weighted_edge(1, 2, 2.5)?;
/// assert_eq!(g.n_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(1, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    n_nodes: usize,
    edges: Vec<Edge>,
    /// Unordered-pair membership index, `min * n + max`.
    #[serde(skip)]
    index: BTreeSet<usize>,
}

impl Graph {
    /// Creates an empty graph on `n_nodes` nodes.
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        Self {
            n_nodes,
            edges: Vec::new(),
            index: BTreeSet::new(),
        }
    }

    /// Builds a graph from unweighted edge pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from [`Graph::add_edge`].
    pub fn from_edges(n_nodes: usize, pairs: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Self::new(n_nodes);
        for &(u, v) in pairs {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    fn pair_key(&self, u: usize, v: usize) -> usize {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        a * self.n_nodes + b
    }

    /// Adds an unweighted (weight 1) edge. Duplicate pairs are ignored.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if either endpoint is invalid.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Adds a weighted edge. Duplicate pairs are ignored (first weight wins).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add_edge`].
    pub fn add_weighted_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<(), GraphError> {
        for node in [u, v] {
            if node >= self.n_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    n_nodes: self.n_nodes,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = self.pair_key(u, v);
        if self.index.insert(key) {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push(Edge { u: a, v: b, weight });
        }
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of edges.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrows the edge list (each edge once, with `u < v`).
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// `true` if the unordered pair `(u, v)` is an edge.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && u < self.n_nodes && v < self.n_nodes && self.index.contains(&self.pair_key(u, v))
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n_nodes`.
    #[must_use]
    pub fn degree(&self, node: usize) -> usize {
        assert!(node < self.n_nodes, "node out of range");
        self.edges
            .iter()
            .filter(|e| e.u == node || e.v == node)
            .count()
    }

    /// Neighbors of `node`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n_nodes`.
    #[must_use]
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        assert!(node < self.n_nodes, "node out of range");
        let mut out: Vec<usize> = self
            .edges
            .iter()
            .filter_map(|e| {
                if e.u == node {
                    Some(e.v)
                } else if e.v == node {
                    Some(e.u)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Sum of all edge weights — the trivial upper bound on any cut.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Weight of the cut induced by `assignment`, where bit `k` of
    /// `assignment` gives the partition of node `k`.
    ///
    /// This is the classical objective `C(z) = Σ_{(u,v)∈E} w_{uv}·[z_u ≠ z_v]`
    /// that QAOA maximizes.
    #[must_use]
    pub fn cut_value(&self, assignment: usize) -> f64 {
        self.edges
            .iter()
            .filter(|e| (assignment >> e.u) & 1 != (assignment >> e.v) & 1)
            .map(|e| e.weight)
            .sum()
    }

    /// The complement graph (same nodes, complementary unweighted edges).
    #[must_use]
    pub fn complement(&self) -> Graph {
        let mut g = Graph::new(self.n_nodes);
        for u in 0..self.n_nodes {
            for v in (u + 1)..self.n_nodes {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v).expect("valid complement edge");
                }
            }
        }
        g
    }

    /// `true` if every node can reach every other node.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n_nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.n_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Rebuilds the internal adjacency index (needed after deserialization,
    /// which skips the index field).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .edges
            .iter()
            .map(|e| e.u * self.n_nodes + e.v)
            .collect();
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n_nodes, self.n_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 1).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        g.add_weighted_edge(0, 1, 9.0).unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edges()[0].weight, 1.0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            g.add_edge(1, 1),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn cut_values_on_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.cut_value(0b000), 0.0);
        assert_eq!(g.cut_value(0b001), 2.0);
        assert_eq!(g.cut_value(0b011), 2.0);
        assert_eq!(g.cut_value(0b111), 0.0);
        // Cut is symmetric under global flip.
        for z in 0..8usize {
            assert_eq!(g.cut_value(z), g.cut_value(!z & 0b111));
        }
    }

    #[test]
    fn weighted_cut() {
        let mut g = Graph::new(2);
        g.add_weighted_edge(0, 1, 2.5).unwrap();
        assert_eq!(g.cut_value(0b01), 2.5);
        assert_eq!(g.total_weight(), 2.5);
    }

    #[test]
    fn complement_partitions_pairs() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let c = g.complement();
        assert_eq!(g.n_edges() + c.n_edges(), 4 * 3 / 2);
        for u in 0..4 {
            for v in (u + 1)..4 {
                assert_ne!(g.has_edge(u, v), c.has_edge(u, v));
            }
        }
    }

    #[test]
    fn connectivity() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(path.is_connected());
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!split.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn display() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.to_string(), "Graph(n=3, m=1)");
    }

    #[test]
    fn rebuild_index_restores_membership() {
        let g = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let mut clone = Graph {
            n_nodes: g.n_nodes,
            edges: g.edges.clone(),
            index: BTreeSet::new(),
        };
        assert!(!clone.has_edge(0, 2)); // index empty
        clone.rebuild_index();
        assert!(clone.has_edge(0, 2));
    }
}
