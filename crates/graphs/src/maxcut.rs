use crate::Graph;

/// Exact MaxCut solver and its result.
///
/// QAOA's quality metric — the approximation ratio `AR = ⟨C⟩ / C_max` — needs
/// the true optimum `C_max`. For the 8-node instances of the paper an
/// exhaustive scan over `2^{n-1}` assignments is instantaneous; the solver
/// supports up to 26 nodes before the scan becomes unreasonable.
pub struct MaxCut;

/// The result of an exact MaxCut computation.
///
/// # Example
///
/// ```
/// use graphs::{generators, MaxCut};
/// let square = generators::cycle(4);
/// let best = MaxCut::solve(&square);
/// assert_eq!(best.value(), 4.0); // even cycles are bipartite
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CutSolution {
    assignment: usize,
    value: f64,
    n_nodes: usize,
}

impl CutSolution {
    /// The optimal cut weight `C_max`.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// One optimal assignment as a bitmask (bit `k` = partition of node `k`).
    /// By convention node 0 is always on side 0.
    #[must_use]
    pub fn assignment(&self) -> usize {
        self.assignment
    }

    /// The optimal assignment as a boolean vector.
    #[must_use]
    pub fn partition(&self) -> Vec<bool> {
        (0..self.n_nodes)
            .map(|k| (self.assignment >> k) & 1 == 1)
            .collect()
    }
}

impl MaxCut {
    /// Maximum node count accepted by [`MaxCut::solve`].
    pub const MAX_NODES: usize = 26;

    /// Finds the maximum cut by exhaustive search over `2^{n-1}` assignments
    /// (the global Z₂ flip symmetry halves the space).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`MaxCut::MAX_NODES`] nodes.
    #[must_use]
    pub fn solve(graph: &Graph) -> CutSolution {
        let n = graph.n_nodes();
        assert!(
            n <= Self::MAX_NODES,
            "exhaustive MaxCut limited to {} nodes",
            Self::MAX_NODES
        );
        if n == 0 {
            return CutSolution {
                assignment: 0,
                value: 0.0,
                n_nodes: 0,
            };
        }
        let half = 1usize << (n - 1); // fix node n-1 on side 0
        let mut best = (0usize, f64::NEG_INFINITY);
        for z in 0..half {
            let v = graph.cut_value(z);
            if v > best.1 {
                best = (z, v);
            }
        }
        CutSolution {
            assignment: best.0,
            value: best.1,
            n_nodes: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_optima() {
        // Bipartite graphs cut every edge.
        assert_eq!(MaxCut::solve(&generators::path(6)).value(), 5.0);
        assert_eq!(MaxCut::solve(&generators::star(7)).value(), 6.0);
        assert_eq!(MaxCut::solve(&generators::cycle(6)).value(), 6.0);
        // Odd cycle loses exactly one edge.
        assert_eq!(MaxCut::solve(&generators::cycle(5)).value(), 4.0);
        // K4: best cut is 2+2 -> 4 edges.
        assert_eq!(MaxCut::solve(&generators::complete(4)).value(), 4.0);
        // K5: best cut is 2+3 -> 6 edges.
        assert_eq!(MaxCut::solve(&generators::complete(5)).value(), 6.0);
    }

    #[test]
    fn assignment_achieves_reported_value() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let g = generators::erdos_renyi(7, 0.5, &mut rng);
            let sol = MaxCut::solve(&g);
            assert_eq!(g.cut_value(sol.assignment()), sol.value());
            // No assignment can beat it (full brute-force double check).
            for z in 0..(1usize << 7) {
                assert!(g.cut_value(z) <= sol.value() + 1e-12);
            }
        }
    }

    #[test]
    fn weighted_graph() {
        let mut g = Graph::new(3);
        g.add_weighted_edge(0, 1, 5.0).unwrap();
        g.add_weighted_edge(1, 2, 1.0).unwrap();
        g.add_weighted_edge(0, 2, 1.0).unwrap();
        // Isolating node 1 cuts weight 6; isolating node 0 also cuts 6.
        assert_eq!(MaxCut::solve(&g).value(), 6.0);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(MaxCut::solve(&Graph::new(0)).value(), 0.0);
        assert_eq!(MaxCut::solve(&Graph::new(4)).value(), 0.0);
        assert_eq!(MaxCut::solve(&Graph::new(4)).partition(), vec![false; 4]);
    }

    #[test]
    fn partition_matches_assignment() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let sol = MaxCut::solve(&g);
        assert_eq!(sol.value(), 1.0);
        let p = sol.partition();
        assert_ne!(p[0], p[1]);
    }
}
