//! Spectral graph analysis: Laplacian spectra and derived quantities.
//!
//! MaxCut has a classic spectral story — the maximum cut is upper-bounded
//! by `n·λ_max(L)/4` (Mohar–Poljak), and the algebraic connectivity `λ₂`
//! measures how "well-knit" the graph is. These quantities extend the
//! structural feature set available to graph-aware predictors and give
//! tests an independent certificate for the exact MaxCut solver.

use linalg::{Matrix, SymmetricEigen};

use crate::Graph;

/// The weighted graph Laplacian `L = D − W` as a dense matrix.
///
/// ```
/// let g = graphs::generators::path(3);
/// let l = graphs::spectral::laplacian(&g);
/// assert_eq!(l.get(0, 0), 1.0);
/// assert_eq!(l.get(1, 1), 2.0);
/// assert_eq!(l.get(0, 1), -1.0);
/// ```
#[must_use]
pub fn laplacian(graph: &Graph) -> Matrix {
    let n = graph.n_nodes();
    let mut l = Matrix::zeros(n, n);
    for e in graph.edges() {
        l.set(e.u, e.v, l.get(e.u, e.v) - e.weight);
        l.set(e.v, e.u, l.get(e.v, e.u) - e.weight);
        l.set(e.u, e.u, l.get(e.u, e.u) + e.weight);
        l.set(e.v, e.v, l.get(e.v, e.v) + e.weight);
    }
    l
}

/// All Laplacian eigenvalues in ascending order (the *Laplacian spectrum*).
///
/// The smallest eigenvalue of any Laplacian is 0 (constant vector); the
/// multiplicity of 0 equals the number of connected components.
///
/// Returns an empty vector for the empty graph.
///
/// # Panics
///
/// Panics if the Jacobi eigensolver rejects the Laplacian — impossible for
/// matrices produced by [`laplacian`], which are symmetric by construction.
#[must_use]
pub fn laplacian_spectrum(graph: &Graph) -> Vec<f64> {
    if graph.n_nodes() == 0 {
        return Vec::new();
    }
    let l = laplacian(graph);
    SymmetricEigen::new(&l)
        .expect("graph Laplacians are symmetric")
        .eigenvalues()
        .to_vec()
}

/// Algebraic connectivity `λ₂(L)` (Fiedler value): positive iff the graph
/// is connected, larger for better-connected graphs.
///
/// Returns `0.0` for graphs with fewer than two nodes.
///
/// ```
/// let path = graphs::generators::path(6);
/// let complete = graphs::generators::complete(6);
/// let a = graphs::spectral::algebraic_connectivity(&path);
/// let b = graphs::spectral::algebraic_connectivity(&complete);
/// assert!(0.0 < a && a < b);
/// assert!((b - 6.0).abs() < 1e-9); // λ₂(K_n) = n
/// ```
#[must_use]
pub fn algebraic_connectivity(graph: &Graph) -> f64 {
    let spectrum = laplacian_spectrum(graph);
    spectrum.get(1).copied().unwrap_or(0.0)
}

/// The Mohar–Poljak spectral upper bound on the maximum cut:
/// `maxcut(G) ≤ n·λ_max(L)/4`.
///
/// Used in tests as an independent certificate for the exhaustive MaxCut
/// solver, and available as a normalizing feature for predictors.
///
/// ```
/// use graphs::{generators, spectral, MaxCut};
/// let g = generators::complete(6);
/// let exact = MaxCut::solve(&g).value();
/// assert!(exact <= spectral::maxcut_upper_bound(&g) + 1e-9);
/// ```
#[must_use]
pub fn maxcut_upper_bound(graph: &Graph) -> f64 {
    let spectrum = laplacian_spectrum(graph);
    let lambda_max = spectrum.last().copied().unwrap_or(0.0);
    graph.n_nodes() as f64 * lambda_max / 4.0
}

/// Number of connected components, read off the multiplicity of the zero
/// Laplacian eigenvalue.
///
/// ```
/// let mut g = graphs::Graph::new(5);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(2, 3).unwrap();
/// assert_eq!(graphs::spectral::component_count(&g), 3); // {0,1} {2,3} {4}
/// ```
#[must_use]
pub fn component_count(graph: &Graph) -> usize {
    laplacian_spectrum(graph)
        .iter()
        .filter(|&&l| l.abs() < 1e-9)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, MaxCut};

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = generators::erdos_renyi_nonempty(
            7,
            0.5,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4),
        );
        let l = laplacian(&g);
        for i in 0..7 {
            let row_sum: f64 = (0..7).map(|j| l.get(i, j)).sum();
            assert!(row_sum.abs() < 1e-12);
        }
    }

    #[test]
    fn known_spectra() {
        // K_n: one zero then n with multiplicity n-1.
        let spectrum = laplacian_spectrum(&generators::complete(5));
        assert!(spectrum[0].abs() < 1e-10);
        for &l in &spectrum[1..] {
            assert!((l - 5.0).abs() < 1e-9);
        }
        // C_n: eigenvalues 2 − 2cos(2πk/n).
        let spectrum = laplacian_spectrum(&generators::cycle(6));
        let mut expected: Vec<f64> = (0..6)
            .map(|k| 2.0 - 2.0 * (2.0 * std::f64::consts::PI * k as f64 / 6.0).cos())
            .collect();
        expected.sort_by(f64::total_cmp);
        for (a, b) in spectrum.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn connectivity_ordering() {
        let path = algebraic_connectivity(&generators::path(8));
        let cycle = algebraic_connectivity(&generators::cycle(8));
        let complete = algebraic_connectivity(&generators::complete(8));
        assert!(0.0 < path && path < cycle && cycle < complete);
        // Disconnected graph: λ₂ = 0.
        let mut g = Graph::new(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        assert!(algebraic_connectivity(&g).abs() < 1e-9);
    }

    #[test]
    fn spectral_bound_certifies_exact_solver() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        for _ in 0..10 {
            let g = generators::erdos_renyi_nonempty(8, 0.5, &mut rng);
            let exact = MaxCut::solve(&g).value();
            let bound = maxcut_upper_bound(&g);
            assert!(exact <= bound + 1e-9, "exact {exact} > bound {bound}");
            // The bound is reasonably tight on small dense graphs.
            assert!(exact >= 0.5 * bound, "exact {exact} << bound {bound}");
        }
    }

    #[test]
    fn weighted_laplacian() {
        let mut g = Graph::new(2);
        g.add_weighted_edge(0, 1, 2.5).unwrap();
        let spectrum = laplacian_spectrum(&g);
        assert!(spectrum[0].abs() < 1e-12);
        assert!((spectrum[1] - 5.0).abs() < 1e-12); // λ_max = 2w
    }

    #[test]
    fn component_counts() {
        assert_eq!(component_count(&generators::complete(4)), 1);
        assert_eq!(component_count(&Graph::new(3)), 3);
        assert_eq!(component_count(&generators::barbell(3)), 1);
        let spectrum = laplacian_spectrum(&Graph::new(0));
        assert!(spectrum.is_empty());
        assert_eq!(component_count(&Graph::new(0)), 0);
    }
}
