//! Undirected weighted graphs and the MaxCut problem.
//!
//! This crate replaces the NetworkX functionality the paper relies on:
//!
//! * [`Graph`] — a simple undirected graph with edge weights,
//! * [`generators`] — the Erdős–Rényi `G(n, p)` ensemble the paper draws its
//!   330 training/test graphs from, the random 3-regular graphs of Figs. 1–3,
//!   and a few named families for tests and examples,
//! * [`MaxCut`] — exact maximum cut by exhaustive bitmask search (the ground
//!   truth that the approximation ratio is measured against),
//! * [`stats`] — degree sequences and other descriptive statistics.
//!
//! # Example
//!
//! ```
//! use graphs::{generators, MaxCut};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::erdos_renyi(8, 0.5, &mut rng);
//! let solution = MaxCut::solve(&g);
//! assert!(solution.value() >= 0.0);
//! assert!(solution.value() <= g.total_weight());
//! ```

mod error;
pub mod generators;
mod graph;
mod maxcut;
pub mod spectral;
pub mod stats;

pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use maxcut::{CutSolution, MaxCut};
