//! Random and named graph generators.
//!
//! The paper's experiments draw on two ensembles:
//!
//! * **Erdős–Rényi `G(n, p)`** with `n = 8`, `p = 0.5` — the 330 graphs of
//!   the training/test data-set ([`erdos_renyi`]),
//! * **random 3-regular graphs** on 8 nodes — the four graphs of
//!   Figs. 1(c), 2 and 3 ([`random_regular`]).
//!
//! Named families ([`complete`], [`cycle`], [`path`], [`star`], [`ladder`])
//! serve as fixtures with known MaxCut optima for tests and examples.

use rand::Rng;

use crate::{Graph, GraphError};

/// Samples `G(n, p)`: every unordered pair becomes an edge independently
/// with probability `p`.
///
/// Probabilities are clamped to `[0, 1]`. Matches NetworkX's `gnp_random_graph`
/// sampling semantics (the paper's source of problem graphs).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let g = graphs::generators::erdos_renyi(8, 1.0, &mut rng);
/// assert_eq!(g.n_edges(), 28); // p = 1 gives the complete graph
/// ```
pub fn erdos_renyi<R: Rng + ?Sized>(n_nodes: usize, p: f64, rng: &mut R) -> Graph {
    let p = p.clamp(0.0, 1.0);
    let mut g = Graph::new(n_nodes);
    for u in 0..n_nodes {
        for v in (u + 1)..n_nodes {
            if rng.gen::<f64>() < p {
                g.add_edge(u, v).expect("generator produces valid edges");
            }
        }
    }
    g
}

/// Samples `G(n, p)` conditioned on having at least one edge.
///
/// The QAOA objective is identically zero on the empty graph (AR undefined),
/// so dataset generation uses this variant, mirroring the paper's implicit
/// restriction to non-trivial instances.
pub fn erdos_renyi_nonempty<R: Rng + ?Sized>(n_nodes: usize, p: f64, rng: &mut R) -> Graph {
    loop {
        let g = erdos_renyi(n_nodes, p, rng);
        if !g.is_empty() {
            return g;
        }
    }
}

/// Samples a uniformly random simple `degree`-regular graph via the pairing
/// (configuration) model with rejection.
///
/// # Errors
///
/// * [`GraphError::InvalidRegularParams`] unless `n·d` is even and `d < n`.
/// * [`GraphError::GenerationFailed`] if rejection sampling exhausts its
///   budget (practically impossible for the 8-node, degree-3 graphs used in
///   the paper).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// # fn main() -> Result<(), graphs::GraphError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let g = graphs::generators::random_regular(8, 3, &mut rng)?;
/// assert!((0..8).all(|v| g.degree(v) == 3));
/// # Ok(())
/// # }
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    n_nodes: usize,
    degree: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if !(n_nodes * degree).is_multiple_of(2) || degree >= n_nodes {
        return Err(GraphError::InvalidRegularParams { n_nodes, degree });
    }
    if degree == 0 {
        return Ok(Graph::new(n_nodes));
    }
    const MAX_ATTEMPTS: usize = 10_000;
    'attempt: for _ in 0..MAX_ATTEMPTS {
        // Pairing model: shuffle n*d "stubs" and pair them off.
        let mut stubs: Vec<usize> = (0..n_nodes)
            .flat_map(|v| std::iter::repeat_n(v, degree))
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut g = Graph::new(n_nodes);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || g.has_edge(u, v) {
                continue 'attempt; // reject self-loops and multi-edges
            }
            g.add_edge(u, v).expect("validated edge");
        }
        return Ok(g);
    }
    Err(GraphError::GenerationFailed {
        attempts: MAX_ATTEMPTS,
    })
}

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n_nodes: usize) -> Graph {
    let mut g = Graph::new(n_nodes);
    for u in 0..n_nodes {
        for v in (u + 1)..n_nodes {
            g.add_edge(u, v).expect("valid edge");
        }
    }
    g
}

/// The cycle `C_n` (`n >= 3`); smaller `n` yields a path.
#[must_use]
pub fn cycle(n_nodes: usize) -> Graph {
    let mut g = path(n_nodes);
    if n_nodes >= 3 {
        g.add_edge(n_nodes - 1, 0).expect("valid edge");
    }
    g
}

/// The path `P_n` with `n - 1` edges.
#[must_use]
pub fn path(n_nodes: usize) -> Graph {
    let mut g = Graph::new(n_nodes);
    for v in 1..n_nodes {
        g.add_edge(v - 1, v).expect("valid edge");
    }
    g
}

/// The star `S_{n-1}`: node 0 connected to all others.
#[must_use]
pub fn star(n_nodes: usize) -> Graph {
    let mut g = Graph::new(n_nodes);
    for v in 1..n_nodes {
        g.add_edge(0, v).expect("valid edge");
    }
    g
}

/// The ladder graph `L_k` on `2k` nodes (two parallel paths plus rungs).
#[must_use]
pub fn ladder(rungs: usize) -> Graph {
    let mut g = Graph::new(2 * rungs);
    for i in 0..rungs {
        g.add_edge(2 * i, 2 * i + 1).expect("valid edge");
        if i + 1 < rungs {
            g.add_edge(2 * i, 2 * (i + 1)).expect("valid edge");
            g.add_edge(2 * i + 1, 2 * (i + 1) + 1).expect("valid edge");
        }
    }
    g
}

/// The wheel graph `W_n`: a hub (node 0) joined to every node of the cycle
/// `C_{n-1}` on nodes `1..n`.
///
/// ```
/// let w = graphs::generators::wheel(6);
/// assert_eq!(w.degree(0), 5);
/// assert_eq!(w.n_edges(), 10); // 5 spokes + 5 rim edges
/// ```
#[must_use]
pub fn wheel(n_nodes: usize) -> Graph {
    let mut g = Graph::new(n_nodes);
    if n_nodes < 2 {
        return g;
    }
    let rim = n_nodes - 1;
    for v in 1..n_nodes {
        g.add_edge(0, v).expect("valid edge");
    }
    if rim >= 3 {
        for i in 0..rim {
            let u = 1 + i;
            let v = 1 + (i + 1) % rim;
            if !g.has_edge(u, v) {
                g.add_edge(u, v).expect("valid edge");
            }
        }
    } else if rim == 2 {
        g.add_edge(1, 2).expect("valid edge");
    }
    g
}

/// The barbell graph: two `K_k` cliques joined by a single bridge edge.
///
/// A worst case for low-depth QAOA locality — the bridge edge's optimal cut
/// assignment depends on both cliques — used by the generalization study.
///
/// ```
/// let b = graphs::generators::barbell(4);
/// assert_eq!(b.n_nodes(), 8);
/// assert_eq!(b.n_edges(), 2 * 6 + 1);
/// ```
#[must_use]
pub fn barbell(clique: usize) -> Graph {
    let mut g = Graph::new(2 * clique);
    for offset in [0, clique] {
        for u in 0..clique {
            for v in (u + 1)..clique {
                g.add_edge(offset + u, offset + v).expect("valid edge");
            }
        }
    }
    if clique >= 1 && 2 * clique >= 2 {
        g.add_edge(clique - 1, clique).expect("valid edge");
    }
    g
}

/// Samples `G(n, m)`: a graph with exactly `m` edges chosen uniformly from
/// all `C(n,2)` pairs (NetworkX `gnm_random_graph`).
///
/// `m` is clamped to the number of available pairs.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = graphs::generators::gnm(8, 12, &mut rng);
/// assert_eq!(g.n_edges(), 12);
/// ```
pub fn gnm<R: Rng + ?Sized>(n_nodes: usize, m: usize, rng: &mut R) -> Graph {
    let mut pairs: Vec<(usize, usize)> = (0..n_nodes)
        .flat_map(|u| ((u + 1)..n_nodes).map(move |v| (u, v)))
        .collect();
    let m = m.min(pairs.len());
    // Partial Fisher–Yates: the first m entries are a uniform m-subset.
    for i in 0..m {
        let j = rng.gen_range(i..pairs.len());
        pairs.swap(i, j);
    }
    let mut g = Graph::new(n_nodes);
    for &(u, v) in &pairs[..m] {
        g.add_edge(u, v).expect("valid edge");
    }
    g
}

/// Samples a Barabási–Albert preferential-attachment graph: starting from a
/// star on `m + 1` nodes, each new node attaches to `m` distinct existing
/// nodes with probability proportional to their current degree.
///
/// # Errors
///
/// * [`GraphError::InvalidRegularParams`] if `m == 0` or `m + 1 > n_nodes`
///   (reusing the parameter-validation variant; the message names both).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// # fn main() -> Result<(), graphs::GraphError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = graphs::generators::barabasi_albert(10, 2, &mut rng)?;
/// assert_eq!(g.n_edges(), 2 + (10 - 3) * 2); // star K_{1,2} then 7 × 2
/// # Ok(())
/// # }
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(
    n_nodes: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 || m + 1 > n_nodes {
        return Err(GraphError::InvalidRegularParams { n_nodes, degree: m });
    }
    // Seed graph: a star K_{1,m} on nodes 0..=m inside the full node set.
    let mut g = Graph::new(n_nodes);
    for v in 1..=m {
        g.add_edge(0, v).expect("valid edge");
    }
    // Repeated-node list: node v appears deg(v) times, so uniform sampling
    // from it is degree-proportional sampling.
    let mut stubs: Vec<usize> = Vec::new();
    for e in g.edges() {
        stubs.push(e.u);
        stubs.push(e.v);
    }
    for new in (m + 1)..n_nodes {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        while targets.len() < m {
            let candidate = stubs[rng.gen_range(0..stubs.len())];
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &t in &targets {
            g.add_edge(new, t).expect("valid edge");
            stubs.push(new);
            stubs.push(t);
        }
    }
    Ok(g)
}

/// Samples a Watts–Strogatz small-world graph: a ring lattice where every
/// node connects to its `k/2` nearest neighbours on each side, with each
/// edge rewired to a random target with probability `beta`.
///
/// # Errors
///
/// * [`GraphError::InvalidRegularParams`] if `k` is odd, zero, or
///   `k >= n_nodes`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// # fn main() -> Result<(), graphs::GraphError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = graphs::generators::watts_strogatz(12, 4, 0.2, &mut rng)?;
/// assert_eq!(g.n_edges(), 12 * 4 / 2);
/// # Ok(())
/// # }
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(
    n_nodes: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if k == 0 || !k.is_multiple_of(2) || k >= n_nodes {
        return Err(GraphError::InvalidRegularParams { n_nodes, degree: k });
    }
    let beta = beta.clamp(0.0, 1.0);
    // Work on a normalized edge set so rewiring preserves the edge count
    // exactly (NetworkX `watts_strogatz_graph` semantics).
    let norm = |a: usize, b: usize| if a < b { (a, b) } else { (b, a) };
    let mut edges = std::collections::BTreeSet::new();
    let mut degree = vec![0usize; n_nodes];
    for u in 0..n_nodes {
        for hop in 1..=(k / 2) {
            let v = (u + hop) % n_nodes;
            if edges.insert(norm(u, v)) {
                degree[u] += 1;
                degree[v] += 1;
            }
        }
    }
    for u in 0..n_nodes {
        for hop in 1..=(k / 2) {
            let v = (u + hop) % n_nodes;
            if rng.gen::<f64>() >= beta {
                continue;
            }
            // Skip if u is already saturated — no fresh target exists.
            if degree[u] >= n_nodes - 1 {
                continue;
            }
            // The lattice edge may itself have been rewired away already.
            if !edges.contains(&norm(u, v)) {
                continue;
            }
            loop {
                let w = rng.gen_range(0..n_nodes);
                if w != u && !edges.contains(&norm(u, w)) {
                    edges.remove(&norm(u, v));
                    degree[v] -= 1;
                    edges.insert(norm(u, w));
                    degree[w] += 1;
                    break;
                }
            }
        }
    }
    let mut g = Graph::new(n_nodes);
    for (a, b) in edges {
        g.add_edge(a, b).expect("valid edge");
    }
    Ok(g)
}

/// Returns a copy of `graph` with every edge weight resampled uniformly
/// from `[lo, hi]` — the weighted-MaxCut extension workload.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let g = graphs::generators::complete(5);
/// let w = graphs::generators::with_random_weights(&g, 0.5, 2.0, &mut rng);
/// assert_eq!(w.n_edges(), g.n_edges());
/// assert!(w.edges().iter().all(|e| (0.5..=2.0).contains(&e.weight)));
/// ```
pub fn with_random_weights<R: Rng + ?Sized>(graph: &Graph, lo: f64, hi: f64, rng: &mut R) -> Graph {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let mut g = Graph::new(graph.n_nodes());
    for e in graph.edges() {
        let w = if (hi - lo).abs() < f64::EPSILON {
            lo
        } else {
            rng.gen_range(lo..=hi)
        };
        g.add_weighted_edge(e.u, e.v, w).expect("valid edge");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(erdos_renyi(6, 0.0, &mut rng).n_edges(), 0);
        assert_eq!(erdos_renyi(6, 1.0, &mut rng).n_edges(), 15);
        // Clamping out-of-range probabilities.
        assert_eq!(erdos_renyi(6, -1.0, &mut rng).n_edges(), 0);
        assert_eq!(erdos_renyi(6, 2.0, &mut rng).n_edges(), 15);
    }

    #[test]
    fn er_density_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 200;
        let total: usize = (0..trials)
            .map(|_| erdos_renyi(8, 0.5, &mut rng).n_edges())
            .sum();
        let mean = total as f64 / trials as f64;
        // Expected 14 edges; allow 5 sigma of the binomial(28, 0.5) mean.
        let sigma = (28.0_f64 * 0.25 / trials as f64).sqrt();
        assert!((mean - 14.0).abs() < 5.0 * sigma * 28.0_f64.sqrt());
    }

    #[test]
    fn er_nonempty_never_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            assert!(!erdos_renyi_nonempty(4, 0.05, &mut rng).is_empty());
        }
    }

    #[test]
    fn regular_graphs_have_uniform_degree() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let g = random_regular(8, 3, &mut rng).unwrap();
            assert_eq!(g.n_edges(), 12);
            for v in 0..8 {
                assert_eq!(g.degree(v), 3, "degree of {v}");
            }
        }
    }

    #[test]
    fn regular_rejects_impossible_params() {
        let mut rng = StdRng::seed_from_u64(1);
        // Odd n*d.
        assert!(matches!(
            random_regular(5, 3, &mut rng),
            Err(GraphError::InvalidRegularParams { .. })
        ));
        // d >= n.
        assert!(matches!(
            random_regular(4, 4, &mut rng),
            Err(GraphError::InvalidRegularParams { .. })
        ));
        // Degenerate but valid: 0-regular.
        assert_eq!(random_regular(4, 0, &mut rng).unwrap().n_edges(), 0);
    }

    #[test]
    fn named_families_shapes() {
        assert_eq!(complete(5).n_edges(), 10);
        assert_eq!(cycle(5).n_edges(), 5);
        assert_eq!(cycle(2).n_edges(), 1); // degenerates to path
        assert_eq!(path(5).n_edges(), 4);
        assert_eq!(path(1).n_edges(), 0);
        assert_eq!(star(5).n_edges(), 4);
        assert_eq!(star(5).degree(0), 4);
        let l = ladder(3); // 6 nodes, 3 rungs + 4 rails
        assert_eq!(l.n_nodes(), 6);
        assert_eq!(l.n_edges(), 7);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = erdos_renyi(8, 0.5, &mut StdRng::seed_from_u64(99));
        let b = erdos_renyi(8, 0.5, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
        let ra = random_regular(8, 3, &mut StdRng::seed_from_u64(4)).unwrap();
        let rb = random_regular(8, 3, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn wheel_shapes() {
        let w = wheel(6);
        assert_eq!(w.n_nodes(), 6);
        assert_eq!(w.degree(0), 5);
        assert!((1..6).all(|v| w.degree(v) == 3));
        assert_eq!(w.n_edges(), 10);
        // Degenerate sizes.
        assert_eq!(wheel(0).n_edges(), 0);
        assert_eq!(wheel(1).n_edges(), 0);
        assert_eq!(wheel(2).n_edges(), 1);
        assert_eq!(wheel(3).n_edges(), 3); // triangle
        assert_eq!(wheel(4).n_edges(), 6); // K4
    }

    #[test]
    fn barbell_shapes() {
        let b = barbell(4);
        assert_eq!(b.n_nodes(), 8);
        assert_eq!(b.n_edges(), 13);
        assert!(b.has_edge(3, 4)); // the bridge
        assert!(b.is_connected());
        assert_eq!(barbell(1).n_edges(), 1); // two isolated nodes + bridge
    }

    #[test]
    fn gnm_edge_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(gnm(8, 0, &mut rng).n_edges(), 0);
        assert_eq!(gnm(8, 12, &mut rng).n_edges(), 12);
        // Clamped to C(8,2) = 28.
        assert_eq!(gnm(8, 1000, &mut rng).n_edges(), 28);
        let a = gnm(8, 10, &mut StdRng::seed_from_u64(9));
        let b = gnm(8, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn barabasi_albert_growth() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(20, 3, &mut rng).unwrap();
        assert_eq!(g.n_nodes(), 20);
        assert_eq!(g.n_edges(), 3 + (20 - 4) * 3);
        // Every late node has degree >= m.
        assert!((4..20).all(|v| g.degree(v) >= 3));
        assert!(g.is_connected());
        assert!(matches!(
            barabasi_albert(5, 0, &mut rng),
            Err(GraphError::InvalidRegularParams { .. })
        ));
        assert!(matches!(
            barabasi_albert(3, 3, &mut rng),
            Err(GraphError::InvalidRegularParams { .. })
        ));
    }

    #[test]
    fn watts_strogatz_ring_and_rewiring() {
        let mut rng = StdRng::seed_from_u64(1);
        // beta = 0 keeps the pure ring lattice.
        let ring = watts_strogatz(10, 4, 0.0, &mut rng).unwrap();
        assert_eq!(ring.n_edges(), 20);
        assert!((0..10).all(|v| ring.degree(v) == 4));
        // beta = 1 rewires everything but keeps the edge count.
        let rewired = watts_strogatz(10, 4, 1.0, &mut rng).unwrap();
        assert_eq!(rewired.n_edges(), 20);
        assert_ne!(ring, rewired);
        assert!(matches!(
            watts_strogatz(10, 3, 0.1, &mut rng),
            Err(GraphError::InvalidRegularParams { .. })
        ));
        assert!(matches!(
            watts_strogatz(4, 4, 0.1, &mut rng),
            Err(GraphError::InvalidRegularParams { .. })
        ));
    }

    #[test]
    fn random_weights_cover_topology() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = cycle(6);
        let w = with_random_weights(&g, 2.0, 3.0, &mut rng);
        assert_eq!(w.n_edges(), 6);
        for e in w.edges() {
            assert!(g.has_edge(e.u, e.v));
            assert!((2.0..=3.0).contains(&e.weight));
        }
        // Reversed bounds are swapped, equal bounds give a constant.
        let c = with_random_weights(&g, 5.0, 5.0, &mut rng);
        assert!(c.edges().iter().all(|e| e.weight == 5.0));
        let r = with_random_weights(&g, 3.0, 2.0, &mut rng);
        assert!(r.edges().iter().all(|e| (2.0..=3.0).contains(&e.weight)));
    }
}
