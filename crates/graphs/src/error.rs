use std::error::Error;
use std::fmt;

/// Error type for graph construction and generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge referenced a node index `>= n_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        n_nodes: usize,
    },
    /// A self-loop `(u, u)` was supplied; simple graphs only.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// A `d`-regular graph with these parameters does not exist
    /// (`n * d` must be even and `d < n`).
    InvalidRegularParams {
        /// Requested node count.
        n_nodes: usize,
        /// Requested degree.
        degree: usize,
    },
    /// The pairing-model sampler failed to produce a simple regular graph
    /// within its retry budget (astronomically unlikely for the sizes used
    /// here, but surfaced rather than looping forever).
    GenerationFailed {
        /// Number of attempts made.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {node} out of range for graph with {n_nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} not allowed"),
            GraphError::InvalidRegularParams { n_nodes, degree } => write!(
                f,
                "no {degree}-regular graph on {n_nodes} nodes exists (need n*d even and d < n)"
            ),
            GraphError::GenerationFailed { attempts } => {
                write!(
                    f,
                    "random regular graph generation failed after {attempts} attempts"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::NodeOutOfRange {
            node: 9,
            n_nodes: 4
        }
        .to_string()
        .contains("node 9"));
        assert!(GraphError::SelfLoop { node: 2 }
            .to_string()
            .contains("self-loop"));
        assert!(GraphError::InvalidRegularParams {
            n_nodes: 5,
            degree: 3
        }
        .to_string()
        .contains("3-regular"));
        assert!(GraphError::GenerationFailed { attempts: 10 }
            .to_string()
            .contains("10 attempts"));
    }
}
