//! Descriptive statistics over graphs, used by the dataset analysis
//! (Fig. 5 reproduction) and by tests.

use crate::Graph;

/// Degree of every node, in node order.
///
/// ```
/// let g = graphs::generators::star(4);
/// assert_eq!(graphs::stats::degree_sequence(&g), vec![3, 1, 1, 1]);
/// ```
#[must_use]
pub fn degree_sequence(graph: &Graph) -> Vec<usize> {
    (0..graph.n_nodes()).map(|v| graph.degree(v)).collect()
}

/// Mean degree; `0.0` for the empty graph.
#[must_use]
pub fn mean_degree(graph: &Graph) -> f64 {
    if graph.n_nodes() == 0 {
        return 0.0;
    }
    2.0 * graph.n_edges() as f64 / graph.n_nodes() as f64
}

/// Edge density `m / C(n, 2)`; `0.0` for graphs with fewer than two nodes.
#[must_use]
pub fn density(graph: &Graph) -> f64 {
    let n = graph.n_nodes();
    if n < 2 {
        return 0.0;
    }
    graph.n_edges() as f64 / (n * (n - 1) / 2) as f64
}

/// `true` if every node has the same degree `d`; returns that degree.
#[must_use]
pub fn regularity(graph: &Graph) -> Option<usize> {
    let seq = degree_sequence(graph);
    match seq.first() {
        None => Some(0),
        Some(&d) if seq.iter().all(|&x| x == d) => Some(d),
        _ => None,
    }
}

/// Number of triangles (3-cycles) in the graph.
#[must_use]
pub fn triangle_count(graph: &Graph) -> usize {
    let n = graph.n_nodes();
    let mut count = 0;
    for u in 0..n {
        for v in (u + 1)..n {
            if !graph.has_edge(u, v) {
                continue;
            }
            for w in (v + 1)..n {
                if graph.has_edge(u, w) && graph.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Local clustering coefficient of `node`: the fraction of its neighbour
/// pairs that are themselves adjacent; `0.0` for degree < 2.
///
/// ```
/// let g = graphs::generators::complete(4);
/// assert_eq!(graphs::stats::local_clustering(&g, 0), 1.0);
/// let s = graphs::generators::star(4);
/// assert_eq!(graphs::stats::local_clustering(&s, 0), 0.0);
/// ```
#[must_use]
pub fn local_clustering(graph: &Graph, node: usize) -> f64 {
    let nbrs = graph.neighbors(node);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (a, &u) in nbrs.iter().enumerate() {
        for &v in &nbrs[(a + 1)..] {
            if graph.has_edge(u, v) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Average clustering coefficient (mean of [`local_clustering`] over all
/// nodes, NetworkX `average_clustering`); `0.0` for the empty graph.
#[must_use]
pub fn average_clustering(graph: &Graph) -> f64 {
    let n = graph.n_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|v| local_clustering(graph, v)).sum::<f64>() / n as f64
}

/// Maximum degree; `0` for the empty graph.
#[must_use]
pub fn max_degree(graph: &Graph) -> usize {
    degree_sequence(graph).into_iter().max().unwrap_or(0)
}

/// Minimum degree; `0` for the empty graph.
#[must_use]
pub fn min_degree(graph: &Graph) -> usize {
    degree_sequence(graph).into_iter().min().unwrap_or(0)
}

/// Population variance of the degree sequence; `0.0` for regular graphs.
#[must_use]
pub fn degree_variance(graph: &Graph) -> f64 {
    let seq = degree_sequence(graph);
    if seq.is_empty() {
        return 0.0;
    }
    let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
    seq.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / seq.len() as f64
}

/// A fixed-length structural feature vector for graph-aware predictors:
/// `[n, m, density, mean_deg, max_deg, min_deg, deg_var, triangles, avg_clustering]`.
///
/// The two-level predictor of the paper uses only
/// `(γ₁OPT(1), β₁OPT(1), pt)`; appending these features lets the
/// generalization study test whether structural context improves transfer
/// to out-of-ensemble graph families.
///
/// ```
/// let g = graphs::generators::cycle(8);
/// let f = graphs::stats::feature_vector(&g);
/// assert_eq!(f.len(), 9);
/// assert_eq!(f[0], 8.0); // n
/// assert_eq!(f[1], 8.0); // m
/// ```
#[must_use]
pub fn feature_vector(graph: &Graph) -> Vec<f64> {
    vec![
        graph.n_nodes() as f64,
        graph.n_edges() as f64,
        density(graph),
        mean_degree(graph),
        max_degree(graph) as f64,
        min_degree(graph) as f64,
        degree_variance(graph),
        triangle_count(graph) as f64,
        average_clustering(graph),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_statistics() {
        let g = generators::cycle(5);
        assert_eq!(degree_sequence(&g), vec![2; 5]);
        assert_eq!(mean_degree(&g), 2.0);
        assert_eq!(regularity(&g), Some(2));
        assert_eq!(regularity(&generators::star(4)), None);
        assert_eq!(regularity(&Graph::new(0)), Some(0));
    }

    #[test]
    fn density_bounds() {
        assert_eq!(density(&generators::complete(6)), 1.0);
        assert_eq!(density(&Graph::new(6)), 0.0);
        assert_eq!(density(&Graph::new(1)), 0.0);
        let half = generators::path(3); // 2 of 3 possible edges
        assert!((density(&half) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn triangles() {
        assert_eq!(triangle_count(&generators::complete(4)), 4);
        assert_eq!(triangle_count(&generators::cycle(4)), 0);
        assert_eq!(triangle_count(&generators::cycle(3)), 1);
        assert_eq!(triangle_count(&Graph::new(3)), 0);
    }

    #[test]
    fn mean_degree_empty() {
        assert_eq!(mean_degree(&Graph::new(0)), 0.0);
    }

    #[test]
    fn clustering_known_values() {
        assert_eq!(average_clustering(&generators::complete(5)), 1.0);
        assert_eq!(average_clustering(&generators::cycle(6)), 0.0);
        assert_eq!(average_clustering(&Graph::new(0)), 0.0);
        // Wheel hub: rim neighbours form a cycle, so C(hub) = (n-1)/C(n-1,2).
        let w = generators::wheel(6);
        assert!((local_clustering(&w, 0) - 5.0 / 10.0).abs() < 1e-15);
        // Rim node: neighbours {hub, 2 rim} with 2 of 3 pairs linked.
        assert!((local_clustering(&w, 1) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn degree_extremes_and_variance() {
        let s = generators::star(5);
        assert_eq!(max_degree(&s), 4);
        assert_eq!(min_degree(&s), 1);
        assert!(degree_variance(&s) > 0.0);
        assert_eq!(degree_variance(&generators::cycle(7)), 0.0);
        assert_eq!(max_degree(&Graph::new(0)), 0);
        assert_eq!(min_degree(&Graph::new(0)), 0);
        assert_eq!(degree_variance(&Graph::new(0)), 0.0);
    }

    #[test]
    fn feature_vector_consistency() {
        let g = generators::complete(4);
        let f = feature_vector(&g);
        assert_eq!(f, vec![4.0, 6.0, 1.0, 3.0, 3.0, 3.0, 0.0, 4.0, 1.0]);
    }
}
