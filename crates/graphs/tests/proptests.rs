//! Property-based tests for graph construction, generators and MaxCut.

use graphs::{generators, Graph, MaxCut};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MaxCut of a graph equals MaxCut of its "double complement".
    #[test]
    fn complement_involution(seed in 0u64..500, n in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 0.5, &mut rng);
        let cc = g.complement().complement();
        prop_assert_eq!(&g, &cc);
    }

    /// Cut values are subadditive with respect to edge partition: the cut of
    /// the union graph equals the sum of the cuts on disjoint edge sets.
    #[test]
    fn cut_additive_over_edges(seed in 0u64..500, z in 0usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(6, 0.5, &mut rng);
        let z = z & 0b11_1111;
        // Split edges into two halves and rebuild two graphs.
        let edges = g.edges();
        let half = edges.len() / 2;
        let mut a = Graph::new(6);
        let mut b = Graph::new(6);
        for (i, e) in edges.iter().enumerate() {
            let target = if i < half { &mut a } else { &mut b };
            target.add_weighted_edge(e.u, e.v, e.weight).expect("valid edge");
        }
        prop_assert!((g.cut_value(z) - (a.cut_value(z) + b.cut_value(z))).abs() < 1e-12);
    }

    /// Bipartite families are fully cuttable: MaxCut == total weight.
    #[test]
    fn bipartite_full_cut(n in 2usize..12) {
        let path = generators::path(n);
        prop_assert_eq!(MaxCut::solve(&path).value(), path.total_weight());
        let star = generators::star(n);
        prop_assert_eq!(MaxCut::solve(&star).value(), star.total_weight());
        if n >= 2 && n % 2 == 0 && n >= 4 {
            let cycle = generators::cycle(n);
            prop_assert_eq!(MaxCut::solve(&cycle).value(), cycle.total_weight());
        }
    }

    /// Odd cycles always lose exactly one edge.
    #[test]
    fn odd_cycle_maxcut(k in 1usize..6) {
        let n = 2 * k + 1;
        let g = generators::cycle(n);
        prop_assert_eq!(MaxCut::solve(&g).value(), (n - 1) as f64);
    }

    /// MaxCut is at least half the edges (random assignment bound).
    #[test]
    fn maxcut_at_least_half_edges(seed in 0u64..500, n in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 0.6, &mut rng);
        prop_assert!(MaxCut::solve(&g).value() >= g.total_weight() / 2.0 - 1e-12);
    }

    /// d-regular generators respect the handshake lemma and degree bound.
    #[test]
    fn regular_generator_properties(seed in 0u64..200, k in 1usize..4) {
        let n = 8;
        let d = k; // 1..3
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible params");
        prop_assert_eq!(g.n_edges(), n * d / 2);
        for v in 0..n {
            prop_assert_eq!(g.degree(v), d);
        }
    }

    /// The reported optimal assignment achieves the reported value, and node
    /// 0's side is fixed (symmetry convention).
    #[test]
    fn solution_consistency(seed in 0u64..300, n in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 0.5, &mut rng);
        let sol = MaxCut::solve(&g);
        prop_assert_eq!(g.cut_value(sol.assignment()), sol.value());
        prop_assert_eq!(sol.partition().len(), n);
        // Highest node is fixed on side 0 by the search convention.
        prop_assert!(!sol.partition()[n - 1]);
    }
}
