//! Property-based tests for the state-vector simulator.

use proptest::prelude::*;
use qsim::{gates, Circuit, Complex64, DiagonalObservable, PauliZString, StateVector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rotation gates compose additively: RX(a)·RX(b) = RX(a+b), applied at
    /// the state level.
    #[test]
    fn rotation_addition_on_states(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let mut s1 = StateVector::plus_state(2);
        s1.apply_single(0, &gates::rx(a)).expect("valid qubit");
        s1.apply_single(0, &gates::rx(b)).expect("valid qubit");
        let mut s2 = StateVector::plus_state(2);
        s2.apply_single(0, &gates::rx(a + b)).expect("valid qubit");
        prop_assert!((s1.fidelity(&s2).expect("same width") - 1.0).abs() < 1e-10);
    }

    /// A diagonal observable's expectation is a convex combination of its
    /// diagonal entries for any normalized state.
    #[test]
    fn diagonal_expectation_bounded(
        angles in proptest::collection::vec(-3.0f64..3.0, 4),
        diag in proptest::collection::vec(-5.0f64..5.0, 8),
    ) {
        let mut s = StateVector::plus_state(3);
        for (q, &theta) in angles.iter().take(3).enumerate() {
            s.apply_single(q, &gates::ry(theta)).expect("valid qubit");
        }
        let obs = DiagonalObservable::new(diag.clone()).expect("power-of-two length");
        let e = obs.expectation(&s).expect("matching dims");
        prop_assert!(e >= obs.min() - 1e-12);
        prop_assert!(e <= obs.max() + 1e-12);
    }

    /// CNOT is self-inverse on arbitrary product states.
    #[test]
    fn cnot_involution(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let mut prep = Circuit::new(2);
        prep.ry(0, a).ry(1, b);
        let base = prep.run(StateVector::zero_state(2)).expect("valid circuit");
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(0, 1);
        let out = c.run(base.clone()).expect("valid circuit");
        prop_assert!((out.fidelity(&base).expect("same width") - 1.0).abs() < 1e-12);
    }

    /// Z-string expectations are bounded by 1 in magnitude.
    #[test]
    fn z_string_bounded(
        angles in proptest::collection::vec(-3.0f64..3.0, 3),
        mask_bits in proptest::collection::vec(0usize..3, 1..3),
    ) {
        let mut s = StateVector::plus_state(3);
        for (q, &theta) in angles.iter().enumerate() {
            s.apply_single(q, &gates::ry(theta)).expect("valid qubit");
        }
        let z = PauliZString::new(&mask_bits);
        let e = z.expectation(&s).expect("in range");
        prop_assert!(e.abs() <= 1.0 + 1e-12);
    }

    /// Global phases never change probabilities.
    #[test]
    fn global_phase_invisible(phi in -6.0f64..6.0) {
        let mut s = StateVector::plus_state(2);
        let before = s.probabilities();
        let phase = Complex64::cis(phi);
        let phases = vec![phase; 4];
        s.apply_diagonal(&phases).expect("matching dims");
        let after = s.probabilities();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((b - a).abs() < 1e-14);
        }
    }

    /// Controlled gates act trivially on the |0…0⟩ control sector.
    #[test]
    fn control_zero_sector_untouched(theta in -3.0f64..3.0, target in 1usize..3) {
        let mut s = StateVector::zero_state(3);
        s.apply_single(target, &gates::ry(theta)).expect("valid qubit");
        let before = s.clone();
        // Control qubit 0 is |0⟩: the controlled gate must do nothing.
        s.apply_controlled(0, target, &gates::rx(1.3)).expect("valid qubits");
        prop_assert!((s.fidelity(&before).expect("same width") - 1.0).abs() < 1e-12);
    }

    /// Sampling frequencies converge to Born probabilities (loose 6-sigma).
    #[test]
    fn born_rule_sampling(theta in 0.3f64..2.8) {
        use rand::SeedableRng;
        let mut s = StateVector::zero_state(1);
        s.apply_single(0, &gates::ry(theta)).expect("valid qubit");
        let p1 = s.probability(1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let shots = 4000;
        let counts = qsim::sample_counts(&s, shots, &mut rng).unwrap();
        let observed = *counts.get(&1).unwrap_or(&0) as f64 / shots as f64;
        let sigma = (p1 * (1.0 - p1) / shots as f64).sqrt().max(1e-3);
        prop_assert!((observed - p1).abs() < 6.0 * sigma,
            "observed {observed} vs born {p1}");
    }
}
