use crate::soa::SplitState;
use crate::{QsimError, StateVector};

/// An observable that is diagonal in the computational basis.
///
/// Cost Hamiltonians of combinatorial problems (MaxCut in this workspace)
/// are diagonal, so their expectation in a state `|ψ⟩` is just
/// `Σ_z |ψ_z|² · C(z)` — no matrix products needed. The diagonal is stored
/// densely (`2^n` entries), matching the state-vector representation.
///
/// # Example
///
/// ```
/// use qsim::{DiagonalObservable, StateVector};
/// # fn main() -> Result<(), qsim::QsimError> {
/// // A one-qubit "Z" observable: +1 on |0⟩, -1 on |1⟩.
/// let z = DiagonalObservable::new(vec![1.0, -1.0])?;
/// let plus = StateVector::plus_state(1);
/// assert!(z.expectation(&plus)?.abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalObservable {
    diag: Vec<f64>,
    /// The distinct diagonal values, in first-appearance order.
    levels: Vec<f64>,
    /// Per-basis-index position into `levels`: `diag[i] == levels[level_of[i]]`.
    level_of: Vec<u32>,
}

impl DiagonalObservable {
    /// Wraps a dense diagonal. The length must be a power of two.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] for non-power-of-two (or
    /// empty) input.
    pub fn new(diag: Vec<f64>) -> Result<Self, QsimError> {
        if diag.is_empty() || !diag.len().is_power_of_two() {
            return Err(QsimError::DimensionMismatch {
                expected: diag.len().next_power_of_two().max(1),
                actual: diag.len(),
            });
        }
        Ok(Self::from_diag(diag))
    }

    /// Builds the diagonal by evaluating `f` on every basis index.
    #[must_use]
    pub fn from_fn<F: FnMut(usize) -> f64>(n_qubits: usize, f: F) -> Self {
        Self::from_diag((0..1usize << n_qubits).map(f).collect())
    }

    /// Computes the level decomposition (distinct values + per-index table)
    /// used by the fast phase kernels. Values are keyed by their exact bit
    /// pattern, so the decomposition is a pure function of the diagonal.
    fn from_diag(diag: Vec<f64>) -> Self {
        let mut index_of = std::collections::BTreeMap::new();
        let mut levels = Vec::new();
        let mut level_of = Vec::with_capacity(diag.len());
        for &value in &diag {
            // lint:allow(no-lossy-as) distinct levels <= diag.len() <= 2^n for a simulable register, far under u32::MAX
            let next = levels.len() as u32;
            let l = *index_of.entry(value.to_bits()).or_insert_with(|| {
                levels.push(value);
                next
            });
            level_of.push(l);
        }
        Self {
            diag,
            levels,
            level_of,
        }
    }

    /// Borrows the diagonal entries.
    #[must_use]
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// The distinct diagonal values, in first-appearance order. A MaxCut
    /// cost diagonal has at most `|E| + 1` levels (unweighted), which is
    /// what makes per-level phase tables (`cis(−γ·level)` computed once per
    /// level instead of once per basis state) the fast path for
    /// [`StateVector::apply_phase_levels`].
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Per-basis-index position into [`DiagonalObservable::levels`]:
    /// `diagonal()[i] == levels()[level_of()[i] as usize]`.
    #[must_use]
    pub fn level_of(&self) -> &[u32] {
        &self.level_of
    }

    /// Number of qubits the observable acts on.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.diag.len().trailing_zeros() as usize // lint:allow(no-lossy-as) trailing_zeros() <= 64 always fits usize
    }

    /// Largest diagonal entry (the exact optimum for maximization problems).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.diag.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest diagonal entry.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.diag.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Expectation `⟨ψ|D|ψ⟩ = Σ_z |ψ_z|² D_z`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the state dimension
    /// differs from the diagonal length.
    pub fn expectation(&self, state: &StateVector) -> Result<f64, QsimError> {
        if state.dim() != self.diag.len() {
            return Err(QsimError::DimensionMismatch {
                expected: self.diag.len(),
                actual: state.dim(),
            });
        }
        Ok(state
            .amplitudes()
            .iter()
            .zip(&self.diag)
            .map(|(a, d)| a.norm_sqr() * d)
            .sum())
    }

    /// Expectation on a split re/im state — the hot-path counterpart of
    /// [`DiagonalObservable::expectation`], computed as a tiled
    /// deterministic reduction (see [`SplitState::expectation_diag`]):
    /// results are bit-identical at any `threads` budget.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the state dimension
    /// differs from the diagonal length.
    pub fn expectation_split(&self, state: &SplitState, threads: usize) -> Result<f64, QsimError> {
        if state.dim() != self.diag.len() {
            return Err(QsimError::DimensionMismatch {
                expected: self.diag.len(),
                actual: state.dim(),
            });
        }
        Ok(state.expectation_diag(&self.diag, threads))
    }
}

/// A product of Pauli-Z operators on a subset of qubits, `Z_{q1} Z_{q2} …`.
///
/// Eigenvalue on basis state `z` is `(-1)^{popcount(z & mask)}`. MaxCut edge
/// terms are two-qubit Z-strings; this type also supports correlation
/// measurements in tests.
///
/// # Example
///
/// ```
/// use qsim::{PauliZString, StateVector};
/// # fn main() -> Result<(), qsim::QsimError> {
/// let zz = PauliZString::new(&[0, 1]);
/// let bell = {
///     let mut c = qsim::Circuit::new(2);
///     c.h(0).cnot(0, 1);
///     c.run(StateVector::zero_state(2))?
/// };
/// // Bell state has perfect ZZ correlation.
/// assert!((zz.expectation(&bell)? - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PauliZString {
    mask: u64,
}

impl PauliZString {
    /// Builds a Z-string acting on the listed qubits (duplicates cancel,
    /// matching the operator identity `Z² = I`).
    #[must_use]
    pub fn new(qubits: &[usize]) -> Self {
        let mut mask = 0u64;
        for &q in qubits {
            mask ^= 1 << q;
        }
        Self { mask }
    }

    /// The bitmask of qubits carrying a Z factor.
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Eigenvalue `±1` on the computational basis state with index `z`.
    #[must_use]
    pub fn eigenvalue(&self, z: usize) -> f64 {
        // lint:allow(no-lossy-as) usize -> u64 is value-preserving on every supported target
        if ((z as u64) & self.mask).count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    }

    /// Expectation `⟨ψ|Z…Z|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] if the mask addresses a qubit
    /// beyond the state's register.
    pub fn expectation(&self, state: &StateVector) -> Result<f64, QsimError> {
        let width = state.n_qubits();
        if self.mask >> width != 0 {
            let qubit = (63 - self.mask.leading_zeros()) as usize; // lint:allow(no-lossy-as) value in 0..=63 fits usize
            return Err(QsimError::QubitOutOfRange {
                qubit,
                n_qubits: width,
            });
        }
        Ok(state
            .amplitudes()
            .iter()
            .enumerate()
            .map(|(z, a)| a.norm_sqr() * self.eigenvalue(z))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    const EPS: f64 = 1e-12;

    #[test]
    fn diagonal_rejects_bad_lengths() {
        assert!(DiagonalObservable::new(vec![]).is_err());
        assert!(DiagonalObservable::new(vec![1.0, 2.0, 3.0]).is_err());
        assert!(DiagonalObservable::new(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn diagonal_expectation_on_basis_states() {
        let d = DiagonalObservable::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        for z in 0..4 {
            let s = StateVector::basis_state(2, z);
            assert!((d.expectation(&s).unwrap() - z as f64).abs() < EPS);
        }
        assert_eq!(d.max(), 3.0);
        assert_eq!(d.min(), 0.0);
        assert_eq!(d.n_qubits(), 2);
    }

    #[test]
    fn diagonal_expectation_uniform_is_mean() {
        let d = DiagonalObservable::from_fn(3, |z| z as f64);
        let s = StateVector::plus_state(3);
        assert!((d.expectation(&s).unwrap() - 3.5).abs() < EPS);
        assert!(d.expectation(&StateVector::plus_state(2)).is_err());
    }

    #[test]
    fn split_expectation_matches_dense() {
        let d = DiagonalObservable::from_fn(3, |z| (z % 3) as f64 - 1.0);
        let s = StateVector::plus_state(3);
        let split = SplitState::from_state_vector(&s);
        // Below one reduction tile the tiled sum degenerates to the dense
        // sequential sum, so the two paths agree bitwise.
        assert_eq!(
            d.expectation_split(&split, 1).unwrap().to_bits(),
            d.expectation(&s).unwrap().to_bits()
        );
        assert!(d.expectation_split(&SplitState::plus_state(2), 1).is_err());
    }

    #[test]
    fn level_decomposition_roundtrips() {
        let d = DiagonalObservable::from_fn(3, |z| (z % 3) as f64);
        assert_eq!(d.levels(), &[0.0, 1.0, 2.0]);
        for (i, &l) in d.level_of().iter().enumerate() {
            assert_eq!(d.diagonal()[i], d.levels()[l as usize]);
        }
        // Signed zeros are distinct bit patterns and must not collapse.
        let signed = DiagonalObservable::new(vec![0.0, -0.0]).unwrap();
        assert_eq!(signed.levels().len(), 2);
    }

    #[test]
    fn z_string_eigenvalues() {
        let z01 = PauliZString::new(&[0, 1]);
        assert_eq!(z01.eigenvalue(0b00), 1.0);
        assert_eq!(z01.eigenvalue(0b01), -1.0);
        assert_eq!(z01.eigenvalue(0b10), -1.0);
        assert_eq!(z01.eigenvalue(0b11), 1.0);
    }

    #[test]
    fn duplicate_qubits_cancel() {
        let id = PauliZString::new(&[2, 2]);
        assert_eq!(id.mask(), 0);
        let s = StateVector::plus_state(3);
        assert!((id.expectation(&s).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn single_z_on_plus_is_zero() {
        let z = PauliZString::new(&[0]);
        let s = StateVector::plus_state(1);
        assert!(z.expectation(&s).unwrap().abs() < EPS);
    }

    #[test]
    fn out_of_range_mask_rejected() {
        let z = PauliZString::new(&[4]);
        let s = StateVector::plus_state(2);
        assert!(matches!(
            z.expectation(&s),
            Err(QsimError::QubitOutOfRange { qubit: 4, .. })
        ));
    }

    #[test]
    fn ghz_parity() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let ghz = c.run(StateVector::zero_state(3)).unwrap();
        // Z_i Z_j = +1 for every pair in a GHZ state; single Z is 0.
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            let zz = PauliZString::new(&[a, b]);
            assert!((zz.expectation(&ghz).unwrap() - 1.0).abs() < EPS);
        }
        assert!(PauliZString::new(&[1]).expectation(&ghz).unwrap().abs() < EPS);
    }
}
