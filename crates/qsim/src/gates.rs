//! Standard single-qubit gate matrices.
//!
//! Each function returns a row-major 2×2 unitary suitable for
//! [`StateVector::apply_single`](crate::StateVector::apply_single) or
//! [`StateVector::apply_controlled`](crate::StateVector::apply_controlled).
//!
//! Rotation conventions follow the usual exponential-map definitions used by
//! the QAOA literature (and QuTiP/Qiskit):
//!
//! * `RX(θ) = exp(-i θ X / 2)`
//! * `RY(θ) = exp(-i θ Y / 2)`
//! * `RZ(θ) = exp(-i θ Z / 2)`
//!
//! so the paper's mixing layer `RX(2β)` and phase layer `RZ(-2γ)` (one per
//! edge, conjugated by CNOTs) compose exactly as in Fig. 1(a).
//!
//! ```
//! use qsim::gates;
//! let h = gates::h();
//! // H is self-inverse: H² = I.
//! let h2 = gates::compose(&h, &h);
//! assert!(gates::max_deviation(&h2, &gates::identity()) < 1e-15);
//! ```

use crate::Complex64;

/// A 2×2 complex matrix in row-major order.
pub type Gate2 = [[Complex64; 2]; 2];

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

/// The 2×2 identity.
#[must_use]
pub fn identity() -> Gate2 {
    [
        [Complex64::ONE, Complex64::ZERO],
        [Complex64::ZERO, Complex64::ONE],
    ]
}

/// Hadamard gate.
#[must_use]
pub fn h() -> Gate2 {
    let s = FRAC_1_SQRT_2;
    [[c(s, 0.0), c(s, 0.0)], [c(s, 0.0), c(-s, 0.0)]]
}

/// Pauli-X (NOT) gate.
#[must_use]
pub fn x() -> Gate2 {
    [
        [Complex64::ZERO, Complex64::ONE],
        [Complex64::ONE, Complex64::ZERO],
    ]
}

/// Pauli-Y gate.
#[must_use]
pub fn y() -> Gate2 {
    [
        [Complex64::ZERO, c(0.0, -1.0)],
        [c(0.0, 1.0), Complex64::ZERO],
    ]
}

/// Pauli-Z gate.
#[must_use]
pub fn z() -> Gate2 {
    [
        [Complex64::ONE, Complex64::ZERO],
        [Complex64::ZERO, c(-1.0, 0.0)],
    ]
}

/// `RX(θ) = exp(-i θ X / 2)`, the QAOA mixing rotation.
#[must_use]
pub fn rx(theta: f64) -> Gate2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(0.0, -s)], [c(0.0, -s), c(co, 0.0)]]
}

/// `RY(θ) = exp(-i θ Y / 2)`.
#[must_use]
pub fn ry(theta: f64) -> Gate2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [[c(co, 0.0), c(-s, 0.0)], [c(s, 0.0), c(co, 0.0)]]
}

/// `RZ(θ) = exp(-i θ Z / 2)`, the phase-separation rotation.
#[must_use]
pub fn rz(theta: f64) -> Gate2 {
    [
        [Complex64::cis(-theta / 2.0), Complex64::ZERO],
        [Complex64::ZERO, Complex64::cis(theta / 2.0)],
    ]
}

/// Phase gate `diag(1, e^{iφ})`.
#[must_use]
pub fn phase(phi: f64) -> Gate2 {
    [
        [Complex64::ONE, Complex64::ZERO],
        [Complex64::ZERO, Complex64::cis(phi)],
    ]
}

/// S gate (`phase(π/2)`).
#[must_use]
pub fn s() -> Gate2 {
    phase(std::f64::consts::FRAC_PI_2)
}

/// T gate (`phase(π/4)`).
#[must_use]
pub fn t() -> Gate2 {
    phase(std::f64::consts::FRAC_PI_4)
}

/// The general single-qubit unitary `U3(θ, φ, λ)` (OpenQASM convention):
///
/// ```text
/// U3 = [[cos(θ/2),            −e^{iλ} sin(θ/2)],
///       [e^{iφ} sin(θ/2),  e^{i(φ+λ)} cos(θ/2)]]
/// ```
///
/// Every single-qubit unitary equals `U3` up to global phase;
/// `U3(θ, −π/2, π/2) = RX(θ)` and `U3(θ, 0, 0) = RY(θ)`.
#[must_use]
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Gate2 {
    let (s, co) = (theta / 2.0).sin_cos();
    [
        [c(co, 0.0), -(Complex64::cis(lambda) * s)],
        [Complex64::cis(phi) * s, Complex64::cis(phi + lambda) * co],
    ]
}

/// Matrix product `a · b` (apply `b` first, then `a`).
#[must_use]
pub fn compose(a: &Gate2, b: &Gate2) -> Gate2 {
    let mut out = [[Complex64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, entry) in row.iter_mut().enumerate() {
            *entry = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Conjugate transpose `U†`.
#[must_use]
pub fn adjoint(u: &Gate2) -> Gate2 {
    [
        [u[0][0].conj(), u[1][0].conj()],
        [u[0][1].conj(), u[1][1].conj()],
    ]
}

/// Largest entry-wise deviation `max |aᵢⱼ − bᵢⱼ|` between two gates.
#[must_use]
pub fn max_deviation(a: &Gate2, b: &Gate2) -> f64 {
    let mut worst = 0.0_f64;
    for i in 0..2 {
        for j in 0..2 {
            worst = worst.max((a[i][j] - b[i][j]).abs());
        }
    }
    worst
}

/// `true` if `u` is unitary to within `tol` (`U†U = I`).
#[must_use]
pub fn is_unitary(u: &Gate2, tol: f64) -> bool {
    max_deviation(&compose(&adjoint(u), u), &identity()) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-14;

    #[test]
    fn all_standard_gates_are_unitary() {
        for (name, g) in [
            ("i", identity()),
            ("h", h()),
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("s", s()),
            ("t", t()),
            ("rx", rx(0.731)),
            ("ry", ry(-2.5)),
            ("rz", rz(4.0)),
            ("phase", phase(1.2)),
        ] {
            assert!(is_unitary(&g, EPS), "{name} is not unitary");
        }
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ
        let xy = compose(&x(), &y());
        let iz = [
            [Complex64::I, Complex64::ZERO],
            [Complex64::ZERO, -Complex64::I],
        ];
        assert!(max_deviation(&xy, &iz) < EPS);
        // X² = Y² = Z² = I
        for g in [x(), y(), z()] {
            assert!(max_deviation(&compose(&g, &g), &identity()) < EPS);
        }
    }

    #[test]
    fn rotations_at_special_angles() {
        // RX(π) = -iX.
        let rxpi = rx(PI);
        let minus_ix = [
            [Complex64::ZERO, c2(0.0, -1.0)],
            [c2(0.0, -1.0), Complex64::ZERO],
        ];
        assert!(max_deviation(&rxpi, &minus_ix) < EPS);
        // RZ(2π) = -I.
        let rz2pi = rz(2.0 * PI);
        let minus_i = compose(&z(), &z());
        let neg = [
            [-minus_i[0][0], -minus_i[0][1]],
            [-minus_i[1][0], -minus_i[1][1]],
        ];
        assert!(max_deviation(&rz2pi, &neg) < EPS);
        // RY(0) = I.
        assert!(max_deviation(&ry(0.0), &identity()) < EPS);
    }

    fn c2(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn hadamard_diagonalizes_x() {
        // H X H = Z.
        let hxh = compose(&compose(&h(), &x()), &h());
        assert!(max_deviation(&hxh, &z()) < EPS);
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        assert!(max_deviation(&compose(&s(), &s()), &z()) < EPS);
        assert!(max_deviation(&compose(&t(), &t()), &s()) < EPS);
    }

    #[test]
    fn adjoint_inverts() {
        let g = rx(1.234);
        assert!(max_deviation(&compose(&adjoint(&g), &g), &identity()) < EPS);
    }

    #[test]
    fn u3_specializations() {
        use std::f64::consts::FRAC_PI_2;
        // U3(θ, −π/2, π/2) = RX(θ).
        assert!(max_deviation(&u3(0.9, -FRAC_PI_2, FRAC_PI_2), &rx(0.9)) < EPS);
        // U3(θ, 0, 0) = RY(θ).
        assert!(max_deviation(&u3(1.3, 0.0, 0.0), &ry(1.3)) < EPS);
        // Always unitary.
        assert!(is_unitary(&u3(2.0, 0.7, -1.1), EPS));
    }

    #[test]
    fn rotation_composition_adds_angles() {
        let a = rz(0.4);
        let b = rz(0.8);
        assert!(max_deviation(&compose(&a, &b), &rz(1.2)) < EPS);
        let a = rx(0.3);
        let b = rx(0.5);
        assert!(max_deviation(&compose(&a, &b), &rx(0.8)) < EPS);
    }
}
