use std::collections::BTreeMap;

use rand::Rng;

use crate::{DensityMatrix, StateVector};

/// Inverse-CDF sampling from an explicit probability vector.
fn sample_from_probs<R: Rng + ?Sized>(probs: &[f64], shots: usize, rng: &mut R) -> Vec<usize> {
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in probs {
        acc += p.max(0.0);
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let last = probs.len().saturating_sub(1);
    (0..shots)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("non-NaN cdf")) {
                Ok(i) | Err(i) => i.min(last),
            }
        })
        .collect()
}

/// Draws `shots` basis-state indices from the Born distribution of `state`.
///
/// Uses inverse-CDF sampling per shot; adequate for the shot counts used in
/// QAOA experiments (`≤ 10^5`).
///
/// # Example
///
/// ```
/// use qsim::{sample_indices, StateVector};
/// use rand::SeedableRng;
/// let state = StateVector::basis_state(2, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let shots = sample_indices(&state, 100, &mut rng);
/// assert!(shots.iter().all(|&z| z == 3));
/// ```
pub fn sample_indices<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Vec<usize> {
    sample_from_probs(&state.probabilities(), shots, rng)
}

/// Draws `shots` measurements and returns a histogram of basis states.
///
/// Keys are basis indices; values are observed counts summing to `shots`.
pub fn sample_counts<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> BTreeMap<usize, usize> {
    let mut counts = BTreeMap::new();
    for z in sample_indices(state, shots, rng) {
        *counts.entry(z).or_insert(0) += 1;
    }
    counts
}

/// Draws `shots` basis-state indices from the diagonal of a density matrix
/// — projective measurement of a (possibly mixed) open-system state.
///
/// # Example
///
/// ```
/// use qsim::{sample_density_indices, DensityMatrix};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), qsim::QsimError> {
/// let rho = DensityMatrix::maximally_mixed(2)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let shots = sample_density_indices(&rho, 100, &mut rng);
/// assert_eq!(shots.len(), 100);
/// assert!(shots.iter().all(|&z| z < 4));
/// # Ok(())
/// # }
/// ```
pub fn sample_density_indices<R: Rng + ?Sized>(
    rho: &DensityMatrix,
    shots: usize,
    rng: &mut R,
) -> Vec<usize> {
    sample_from_probs(&rho.probabilities(), shots, rng)
}

/// Draws `shots` measurements from a density matrix and returns a histogram
/// of basis states.
pub fn sample_density_counts<R: Rng + ?Sized>(
    rho: &DensityMatrix,
    shots: usize,
    rng: &mut R,
) -> BTreeMap<usize, usize> {
    let mut counts = BTreeMap::new();
    for z in sample_density_indices(rho, shots, rng) {
        *counts.entry(z).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_state_samples_deterministically() {
        let s = StateVector::basis_state(3, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&s, 50, &mut rng);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&5], 50);
    }

    #[test]
    fn uniform_state_covers_support() {
        let s = StateVector::plus_state(2);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = sample_counts(&s, 4000, &mut rng);
        assert_eq!(counts.values().sum::<usize>(), 4000);
        // All four outcomes present, each within 5 sigma of 1000.
        for z in 0..4 {
            let c = *counts.get(&z).unwrap_or(&0) as f64;
            assert!((c - 1000.0).abs() < 5.0 * (4000.0_f64 * 0.25 * 0.75).sqrt());
        }
    }

    #[test]
    fn zero_shots_is_empty() {
        let s = StateVector::plus_state(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_indices(&s, 0, &mut rng).is_empty());
        assert!(sample_counts(&s, 0, &mut rng).is_empty());
    }

    #[test]
    fn seeded_reproducibility() {
        let s = StateVector::plus_state(3);
        let a = sample_indices(&s, 32, &mut StdRng::seed_from_u64(9));
        let b = sample_indices(&s, 32, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn density_sampling_matches_pure_state_distribution() {
        // Sampling |ψ⟩⟨ψ| must match sampling |ψ⟩ for the same seed.
        let s = StateVector::plus_state(2);
        let rho = DensityMatrix::from_state_vector(&s).unwrap();
        let a = sample_indices(&s, 64, &mut StdRng::seed_from_u64(4));
        let b = sample_density_indices(&rho, 64, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_state_sampling_covers_support() {
        let rho = DensityMatrix::maximally_mixed(2).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let counts = sample_density_counts(&rho, 4000, &mut rng);
        assert_eq!(counts.values().sum::<usize>(), 4000);
        for z in 0..4 {
            let c = *counts.get(&z).unwrap_or(&0) as f64;
            assert!((c - 1000.0).abs() < 5.0 * (4000.0_f64 * 0.25 * 0.75).sqrt());
        }
    }
}
