use std::collections::BTreeMap;

use rand::Rng;

use crate::{DensityMatrix, QsimError, StateVector};

/// Reusable inverse-CDF sampler over an explicit probability vector.
///
/// [`CdfSampler::load`] validates the distribution and builds the cumulative
/// table once; [`CdfSampler::draw`] then costs one RNG draw plus a binary
/// search per shot with no allocation, so a hot loop can re-`load` the same
/// sampler every evaluation and keep its capacity.
///
/// Zero-probability entries occupy zero-width intervals of the CDF and are
/// never selected: `draw` looks for the first index whose cumulative value
/// *strictly exceeds* the uniform draw, which skips every plateau (including
/// a leading one at `u == 0`).
///
/// # Example
///
/// ```
/// use qsim::CdfSampler;
/// use rand::SeedableRng;
/// let mut sampler = CdfSampler::new();
/// sampler.load(&[0.0, 0.5, 0.0, 0.5])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// for _ in 0..100 {
///     let z = sampler.draw(&mut rng);
///     assert!(z == 1 || z == 3);
/// }
/// # Ok::<(), qsim::QsimError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CdfSampler {
    cdf: Vec<f64>,
    total: f64,
    last_support: usize,
}

impl CdfSampler {
    /// An empty sampler; call [`CdfSampler::load`] before drawing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the cumulative table for `probs`, validating it first.
    ///
    /// Entries must be finite; tiny negative values (rounding noise from
    /// `re² + im²` arithmetic) are clamped to zero. Returns
    /// [`QsimError::InvalidProbabilities`] if `probs` is empty, contains a
    /// non-finite entry, or sums to zero — an all-zero vector has no valid
    /// Born distribution and must not silently sample index 0.
    pub fn load(&mut self, probs: &[f64]) -> Result<(), QsimError> {
        self.cdf.clear();
        self.cdf.reserve(probs.len());
        let mut acc = 0.0;
        let mut last_support = None;
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() {
                return Err(QsimError::InvalidProbabilities {
                    reason: "non-finite entry",
                });
            }
            let p = p.max(0.0);
            if p > 0.0 {
                last_support = Some(i);
            }
            acc += p;
            self.cdf.push(acc);
        }
        let Some(last_support) = last_support else {
            return Err(QsimError::InvalidProbabilities {
                reason: "no positive entry",
            });
        };
        self.total = acc;
        self.last_support = last_support;
        Ok(())
    }

    /// Builds the cumulative table from split re/im amplitude planes,
    /// sampling the Born distribution `|re[i]|² + |im[i]|²` without an
    /// intermediate probability buffer.
    pub fn load_amplitudes(&mut self, re: &[f64], im: &[f64]) -> Result<(), QsimError> {
        if re.len() != im.len() {
            return Err(QsimError::DimensionMismatch {
                expected: re.len(),
                actual: im.len(),
            });
        }
        self.cdf.clear();
        self.cdf.reserve(re.len());
        let mut acc = 0.0;
        let mut last_support = None;
        for (i, (&r, &m)) in re.iter().zip(im).enumerate() {
            let p = r * r + m * m;
            if !p.is_finite() {
                return Err(QsimError::InvalidProbabilities {
                    reason: "non-finite entry",
                });
            }
            if p > 0.0 {
                last_support = Some(i);
            }
            acc += p;
            self.cdf.push(acc);
        }
        let Some(last_support) = last_support else {
            return Err(QsimError::InvalidProbabilities {
                reason: "no positive entry",
            });
        };
        self.total = acc;
        self.last_support = last_support;
        Ok(())
    }

    /// Draws one basis-state index from the loaded distribution.
    ///
    /// Consumes exactly one `f64` from `rng` per call. The search is
    /// strictly-greater (`partition_point` on `cdf[i] <= u`), so an index is
    /// selectable only if its probability widened the CDF — zero-probability
    /// states are unreachable. If rounding pushes `u` to the very top of the
    /// table, the draw falls back to the last positive-probability index.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen::<f64>() * self.total;
        let i = self.cdf.partition_point(|&c| c <= u);
        i.min(self.last_support)
    }
}

/// Draws `shots` basis-state indices from the Born distribution of `state`.
///
/// Uses inverse-CDF sampling per shot; adequate for the shot counts used in
/// QAOA experiments (`≤ 10^5`). Fails if the state's probability vector is
/// invalid (all-zero or non-finite, e.g. an uninitialised register).
///
/// # Example
///
/// ```
/// use qsim::{sample_indices, StateVector};
/// use rand::SeedableRng;
/// let state = StateVector::basis_state(2, 3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let shots = sample_indices(&state, 100, &mut rng)?;
/// assert!(shots.iter().all(|&z| z == 3));
/// # Ok::<(), qsim::QsimError>(())
/// ```
pub fn sample_indices<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Result<Vec<usize>, QsimError> {
    let mut sampler = CdfSampler::new();
    sampler.load(&state.probabilities())?;
    Ok((0..shots).map(|_| sampler.draw(rng)).collect())
}

/// Draws `shots` measurements and returns a histogram of basis states.
///
/// Keys are basis indices; values are observed counts summing to `shots`.
pub fn sample_counts<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Result<BTreeMap<usize, usize>, QsimError> {
    let mut counts = BTreeMap::new();
    for z in sample_indices(state, shots, rng)? {
        *counts.entry(z).or_insert(0) += 1;
    }
    Ok(counts)
}

/// Draws `shots` basis-state indices from the diagonal of a density matrix
/// — projective measurement of a (possibly mixed) open-system state.
///
/// # Example
///
/// ```
/// use qsim::{sample_density_indices, DensityMatrix};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), qsim::QsimError> {
/// let rho = DensityMatrix::maximally_mixed(2)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let shots = sample_density_indices(&rho, 100, &mut rng)?;
/// assert_eq!(shots.len(), 100);
/// assert!(shots.iter().all(|&z| z < 4));
/// # Ok(())
/// # }
/// ```
pub fn sample_density_indices<R: Rng + ?Sized>(
    rho: &DensityMatrix,
    shots: usize,
    rng: &mut R,
) -> Result<Vec<usize>, QsimError> {
    let mut sampler = CdfSampler::new();
    sampler.load(&rho.probabilities())?;
    Ok((0..shots).map(|_| sampler.draw(rng)).collect())
}

/// Draws `shots` measurements from a density matrix and returns a histogram
/// of basis states.
pub fn sample_density_counts<R: Rng + ?Sized>(
    rho: &DensityMatrix,
    shots: usize,
    rng: &mut R,
) -> Result<BTreeMap<usize, usize>, QsimError> {
    let mut counts = BTreeMap::new();
    for z in sample_density_indices(rho, shots, rng)? {
        *counts.entry(z).or_insert(0) += 1;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_state_samples_deterministically() {
        let s = StateVector::basis_state(3, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&s, 50, &mut rng).unwrap();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&5], 50);
    }

    #[test]
    fn uniform_state_covers_support() {
        let s = StateVector::plus_state(2);
        let mut rng = StdRng::seed_from_u64(42);
        let counts = sample_counts(&s, 4000, &mut rng).unwrap();
        assert_eq!(counts.values().sum::<usize>(), 4000);
        // All four outcomes present, each within 5 sigma of 1000.
        for z in 0..4 {
            let c = *counts.get(&z).unwrap_or(&0) as f64;
            assert!((c - 1000.0).abs() < 5.0 * (4000.0_f64 * 0.25 * 0.75).sqrt());
        }
    }

    #[test]
    fn zero_shots_is_empty() {
        let s = StateVector::plus_state(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_indices(&s, 0, &mut rng).unwrap().is_empty());
        assert!(sample_counts(&s, 0, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn seeded_reproducibility() {
        let s = StateVector::plus_state(3);
        let a = sample_indices(&s, 32, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = sample_indices(&s, 32, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn density_sampling_matches_pure_state_distribution() {
        // Sampling |ψ⟩⟨ψ| must match sampling |ψ⟩ for the same seed.
        let s = StateVector::plus_state(2);
        let rho = DensityMatrix::from_state_vector(&s).unwrap();
        let a = sample_indices(&s, 64, &mut StdRng::seed_from_u64(4)).unwrap();
        let b = sample_density_indices(&rho, 64, &mut StdRng::seed_from_u64(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_state_sampling_covers_support() {
        let rho = DensityMatrix::maximally_mixed(2).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let counts = sample_density_counts(&rho, 4000, &mut rng).unwrap();
        assert_eq!(counts.values().sum::<usize>(), 4000);
        for z in 0..4 {
            let c = *counts.get(&z).unwrap_or(&0) as f64;
            assert!((c - 1000.0).abs() < 5.0 * (4000.0_f64 * 0.25 * 0.75).sqrt());
        }
    }

    #[test]
    fn zero_probability_entries_never_sampled() {
        // Leading, interior, and trailing zeros: only the support may appear,
        // for every RNG stream. A basis state |2⟩ has zero amplitude on
        // indices 0, 1, and 3 — the old plateau-landing search could emit
        // them (u == 0.0 always selected index 0).
        let mut sampler = CdfSampler::new();
        sampler.load(&[0.0, 0.25, 0.0, 0.5, 0.25, 0.0]).unwrap();
        for seed in 0..32 {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..256 {
                let z = sampler.draw(&mut rng);
                assert!(z == 1 || z == 3 || z == 4, "sampled zero-probability {z}");
            }
        }
    }

    #[test]
    fn leading_zero_state_never_samples_zero_index() {
        // Regression: basis_state(2, 2) has zero amplitude at index 0; a
        // uniform draw of exactly 0.0 used to land there.
        let s = StateVector::basis_state(2, 2);
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let shots = sample_indices(&s, 128, &mut rng).unwrap();
            assert!(shots.iter().all(|&z| z == 2));
        }
    }

    #[test]
    fn all_zero_probabilities_rejected() {
        let mut sampler = CdfSampler::new();
        let err = sampler.load(&[0.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, QsimError::InvalidProbabilities { .. }));
        let err = sampler.load(&[]).unwrap_err();
        assert!(matches!(err, QsimError::InvalidProbabilities { .. }));
    }

    #[test]
    fn non_finite_probabilities_rejected() {
        let mut sampler = CdfSampler::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = sampler.load(&[0.5, bad, 0.5]).unwrap_err();
            assert!(matches!(err, QsimError::InvalidProbabilities { .. }));
        }
    }

    #[test]
    fn negative_rounding_noise_clamped() {
        let mut sampler = CdfSampler::new();
        sampler.load(&[-1e-300, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..64 {
            assert_eq!(sampler.draw(&mut rng), 1);
        }
    }

    #[test]
    fn load_amplitudes_matches_load_of_squares() {
        let re = [0.5_f64, 0.0, -0.5, 0.5];
        let im = [0.0_f64, 0.0, 0.5, 0.0];
        let probs: Vec<f64> = re.iter().zip(&im).map(|(r, m)| r * r + m * m).collect();
        let mut a = CdfSampler::new();
        a.load_amplitudes(&re, &im).unwrap();
        let mut b = CdfSampler::new();
        b.load(&probs).unwrap();
        let xa: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(77);
            (0..128).map(|_| a.draw(&mut rng)).collect()
        };
        let xb: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(77);
            (0..128).map(|_| b.draw(&mut rng)).collect()
        };
        assert_eq!(xa, xb);
        assert!(xa.iter().all(|&z| z != 1), "zero-amplitude index sampled");
    }

    #[test]
    fn load_amplitudes_length_mismatch_rejected() {
        let mut sampler = CdfSampler::new();
        let err = sampler.load_amplitudes(&[1.0, 0.0], &[0.0]).unwrap_err();
        assert!(matches!(err, QsimError::DimensionMismatch { .. }));
    }

    #[test]
    fn sampler_reuse_after_error_is_clean() {
        let mut sampler = CdfSampler::new();
        assert!(sampler.load(&[0.0]).is_err());
        sampler.load(&[0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sampler.draw(&mut rng), 1);
    }
}
