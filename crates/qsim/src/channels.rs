//! Single-qubit noise channels in Kraus form.
//!
//! The paper evaluates QAOA on a noiseless simulator (QuTiP), but its
//! motivation is NISQ hardware, where every gate is followed by noise. These
//! channels feed the [`DensityMatrix`](crate::DensityMatrix) simulator so
//! the two-level flow can be studied under realistic decoherence (see the
//! `noisy_qaoa` benchmark binary and `qaoa::noisy`).
//!
//! A channel is a set of Kraus operators `{K_i}` with `Σ K_i† K_i = I`,
//! acting as `ρ → Σ K_i ρ K_i†`. All constructors validate their
//! probability argument and the completeness relation.

use crate::gates::Gate2;
use crate::{Complex64, QsimError};

fn c(re: f64) -> Complex64 {
    Complex64::new(re, 0.0)
}

/// A single-qubit quantum channel in Kraus form.
///
/// # Example
///
/// ```
/// use qsim::KrausChannel;
/// # fn main() -> Result<(), qsim::QsimError> {
/// let ch = KrausChannel::depolarizing(0.1)?;
/// assert_eq!(ch.ops().len(), 4);
/// assert!(ch.completeness_deviation() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    name: &'static str,
    ops: Vec<Gate2>,
    /// Set by [`KrausChannel::depolarizing`]: the channel's probability,
    /// enabling the density-matrix simulator's closed-form fast path.
    depolarizing_p: Option<f64>,
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Errors
    ///
    /// * [`QsimError::InvalidChannel`] if `ops` is empty or the completeness
    ///   relation `Σ K†K = I` is violated by more than `1e-9`.
    pub fn new(name: &'static str, ops: Vec<Gate2>) -> Result<Self, QsimError> {
        if ops.is_empty() {
            return Err(QsimError::InvalidChannel {
                reason: "empty Kraus operator list",
            });
        }
        let ch = Self {
            name,
            ops,
            depolarizing_p: None,
        };
        if ch.completeness_deviation() > 1e-9 {
            return Err(QsimError::InvalidChannel {
                reason: "Kraus operators are not trace-preserving",
            });
        }
        Ok(ch)
    }

    /// The identity (no-noise) channel.
    #[must_use]
    pub fn identity() -> Self {
        Self {
            name: "identity",
            ops: vec![crate::gates::identity()],
            depolarizing_p: None,
        }
    }

    /// Depolarizing channel: with probability `p` the qubit is replaced by
    /// the maximally mixed state — `ρ → (1−p) ρ + p/3 (XρX + YρY + ZρZ)`.
    ///
    /// # Errors
    ///
    /// [`QsimError::InvalidChannel`] unless `p ∈ [0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, QsimError> {
        check_probability(p)?;
        let scale = |g: Gate2, s: f64| scale_gate(&g, s);
        Ok(Self {
            name: "depolarizing",
            ops: vec![
                scale(crate::gates::identity(), (1.0 - p).sqrt()),
                scale(crate::gates::x(), (p / 3.0).sqrt()),
                scale(crate::gates::y(), (p / 3.0).sqrt()),
                scale(crate::gates::z(), (p / 3.0).sqrt()),
            ],
            depolarizing_p: Some(p),
        })
    }

    /// Amplitude damping (T1 relaxation): `|1⟩` decays to `|0⟩` with
    /// probability `gamma`.
    ///
    /// # Errors
    ///
    /// [`QsimError::InvalidChannel`] unless `gamma ∈ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, QsimError> {
        check_probability(gamma)?;
        let k0 = [[c(1.0), c(0.0)], [c(0.0), c((1.0 - gamma).sqrt())]];
        let k1 = [[c(0.0), c(gamma.sqrt())], [c(0.0), c(0.0)]];
        Ok(Self {
            name: "amplitude-damping",
            ops: vec![k0, k1],
            depolarizing_p: None,
        })
    }

    /// Phase damping (pure T2 dephasing): off-diagonals shrink by
    /// `√(1−lambda)` without population transfer.
    ///
    /// # Errors
    ///
    /// [`QsimError::InvalidChannel`] unless `lambda ∈ [0, 1]`.
    pub fn phase_damping(lambda: f64) -> Result<Self, QsimError> {
        check_probability(lambda)?;
        let k0 = [[c(1.0), c(0.0)], [c(0.0), c((1.0 - lambda).sqrt())]];
        let k1 = [[c(0.0), c(0.0)], [c(0.0), c(lambda.sqrt())]];
        Ok(Self {
            name: "phase-damping",
            ops: vec![k0, k1],
            depolarizing_p: None,
        })
    }

    /// Bit-flip channel: applies `X` with probability `p`.
    ///
    /// # Errors
    ///
    /// [`QsimError::InvalidChannel`] unless `p ∈ [0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, QsimError> {
        check_probability(p)?;
        Ok(Self {
            name: "bit-flip",
            ops: vec![
                scale_gate(&crate::gates::identity(), (1.0 - p).sqrt()),
                scale_gate(&crate::gates::x(), p.sqrt()),
            ],
            depolarizing_p: None,
        })
    }

    /// Phase-flip channel: applies `Z` with probability `p`.
    ///
    /// # Errors
    ///
    /// [`QsimError::InvalidChannel`] unless `p ∈ [0, 1]`.
    pub fn phase_flip(p: f64) -> Result<Self, QsimError> {
        check_probability(p)?;
        Ok(Self {
            name: "phase-flip",
            ops: vec![
                scale_gate(&crate::gates::identity(), (1.0 - p).sqrt()),
                scale_gate(&crate::gates::z(), p.sqrt()),
            ],
            depolarizing_p: None,
        })
    }

    /// The Kraus operators.
    #[must_use]
    pub fn ops(&self) -> &[Gate2] {
        &self.ops
    }

    /// The depolarizing probability, when this channel was built by
    /// [`KrausChannel::depolarizing`] — the density-matrix simulator uses
    /// it to apply the channel's closed form (a per-block blend) instead of
    /// the generic four-operator Kraus sum.
    #[must_use]
    pub fn as_depolarizing(&self) -> Option<f64> {
        self.depolarizing_p
    }

    /// Channel name (e.g. `"depolarizing"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `true` for the trivial single-identity-operator channel.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.ops.len() == 1
            && crate::gates::max_deviation(&self.ops[0], &crate::gates::identity()) < 1e-15
    }

    /// Max-norm deviation of `Σ K†K` from the identity (0 for a valid
    /// trace-preserving channel).
    #[must_use]
    pub fn completeness_deviation(&self) -> f64 {
        let mut sum = [[Complex64::ZERO; 2]; 2];
        for k in &self.ops {
            // K†K.
            for (i, row) in sum.iter_mut().enumerate() {
                for (j, entry) in row.iter_mut().enumerate() {
                    for krow in k {
                        *entry += krow[i].conj() * krow[j];
                    }
                }
            }
        }
        let id = crate::gates::identity();
        let mut dev = 0.0_f64;
        for i in 0..2 {
            for j in 0..2 {
                dev = dev.max((sum[i][j] - id[i][j]).abs());
            }
        }
        dev
    }
}

fn check_probability(p: f64) -> Result<(), QsimError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(QsimError::InvalidChannel {
            reason: "probability outside [0, 1]",
        });
    }
    Ok(())
}

fn scale_gate(g: &Gate2, s: f64) -> Gate2 {
    [
        [g[0][0].scale(s), g[0][1].scale(s)],
        [g[1][0].scale(s), g[1][1].scale(s)],
    ]
}

/// Where noise is injected while running a circuit on a
/// [`DensityMatrix`](crate::DensityMatrix).
///
/// Models the standard gate-error abstraction: after every one-qubit gate
/// the `after_1q` channel hits the target qubit; after every two-qubit gate
/// the `after_2q` channel hits **both** qubits (two-qubit gates dominate
/// NISQ error budgets, so the two rates are independent knobs).
///
/// # Example
///
/// ```
/// use qsim::{KrausChannel, NoiseModel};
/// # fn main() -> Result<(), qsim::QsimError> {
/// let nm = NoiseModel::uniform_depolarizing(0.001, 0.01)?;
/// assert!(!nm.is_noiseless());
/// assert!(NoiseModel::default().is_noiseless());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseModel {
    /// Channel applied to the target qubit after every one-qubit gate.
    pub after_1q: Option<KrausChannel>,
    /// Channel applied to both qubits after every two-qubit gate.
    pub after_2q: Option<KrausChannel>,
}

impl NoiseModel {
    /// No noise at all (identical to `Default`).
    #[must_use]
    pub fn noiseless() -> Self {
        Self::default()
    }

    /// Depolarizing noise with independent one- and two-qubit error rates —
    /// the standard NISQ abstraction (e.g. `p1 = 0.001`, `p2 = 0.01`).
    ///
    /// # Errors
    ///
    /// [`QsimError::InvalidChannel`] unless both rates are in `[0, 1]`.
    pub fn uniform_depolarizing(p1: f64, p2: f64) -> Result<Self, QsimError> {
        Ok(Self {
            after_1q: if p1 > 0.0 {
                Some(KrausChannel::depolarizing(p1)?)
            } else {
                check_probability(p1)?;
                None
            },
            after_2q: if p2 > 0.0 {
                Some(KrausChannel::depolarizing(p2)?)
            } else {
                check_probability(p2)?;
                None
            },
        })
    }

    /// `true` if no channel is configured.
    #[must_use]
    pub fn is_noiseless(&self) -> bool {
        self.after_1q.is_none() && self.after_2q.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_channels_are_trace_preserving() {
        for p in [0.0, 0.1, 0.5, 1.0] {
            for ch in [
                KrausChannel::depolarizing(p).unwrap(),
                KrausChannel::amplitude_damping(p).unwrap(),
                KrausChannel::phase_damping(p).unwrap(),
                KrausChannel::bit_flip(p).unwrap(),
                KrausChannel::phase_flip(p).unwrap(),
            ] {
                assert!(
                    ch.completeness_deviation() < 1e-12,
                    "{} p={p}: {}",
                    ch.name(),
                    ch.completeness_deviation()
                );
            }
        }
    }

    #[test]
    fn invalid_probabilities_rejected() {
        for p in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(KrausChannel::depolarizing(p).is_err(), "p = {p}");
            assert!(KrausChannel::amplitude_damping(p).is_err());
            assert!(KrausChannel::bit_flip(p).is_err());
        }
    }

    #[test]
    fn new_validates_completeness() {
        // A lone X/√2 is not trace-preserving.
        let bad = scale_gate(&crate::gates::x(), std::f64::consts::FRAC_1_SQRT_2);
        assert!(matches!(
            KrausChannel::new("bad", vec![bad]),
            Err(QsimError::InvalidChannel { .. })
        ));
        assert!(matches!(
            KrausChannel::new("empty", vec![]),
            Err(QsimError::InvalidChannel { .. })
        ));
        // A unitary alone is fine.
        assert!(KrausChannel::new("h", vec![crate::gates::h()]).is_ok());
    }

    #[test]
    fn identity_channel() {
        let id = KrausChannel::identity();
        assert!(id.is_identity());
        assert!(!KrausChannel::depolarizing(0.3).unwrap().is_identity());
        // p = 0 depolarizing has 4 ops but 3 are zero; not flagged identity
        // by the cheap check, which is fine — it is still a no-op channel.
        assert!(
            KrausChannel::depolarizing(0.0)
                .unwrap()
                .completeness_deviation()
                < 1e-15
        );
    }

    #[test]
    fn noise_model_constructors() {
        assert!(NoiseModel::noiseless().is_noiseless());
        let nm = NoiseModel::uniform_depolarizing(0.0, 0.0).unwrap();
        assert!(nm.is_noiseless());
        let nm = NoiseModel::uniform_depolarizing(0.001, 0.01).unwrap();
        assert!(!nm.is_noiseless());
        assert!(NoiseModel::uniform_depolarizing(-1.0, 0.0).is_err());
        assert!(NoiseModel::uniform_depolarizing(0.0, 2.0).is_err());
    }
}
