use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Implemented first-party (rather than pulling in `num-complex`) per the
/// workspace's hermetic-build policy; provides exactly the operations the
/// simulator needs.
///
/// # Example
///
/// ```
/// use qsim::Complex64;
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert!((Complex64::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian components.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates `r·e^{iθ}`.
    ///
    /// ```
    /// let z = qsim::Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}`, the unit phase used by diagonal gate kernels.
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`; cheaper than [`Self::abs`] and exact for
    /// probability computations.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by `i` without a full complex multiply.
    #[must_use]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `true` if both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-14;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a - a, Complex64::ZERO);
        assert_eq!(a * Complex64::ONE, a);
        let quotient = (a * b) / b;
        assert!((quotient - a).abs() < EPS);
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, 4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).im.abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
        assert!((Complex64::cis(PI) + Complex64::ONE).abs() < EPS);
    }

    #[test]
    fn mul_i_is_quarter_turn() {
        let z = Complex64::new(1.0, 0.0);
        let w = z.mul_i();
        assert_eq!(w, Complex64::I);
        assert!((w.arg() - FRAC_PI_2).abs() < EPS);
        assert_eq!(z.mul_i().mul_i(), -z);
    }

    #[test]
    fn scalar_ops_and_sum() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        assert_eq!(2.0 * z, z.scale(2.0));
        let total: Complex64 = [z, z, -z].into_iter().sum();
        assert_eq!(total, z);
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::ONE;
        z += Complex64::I;
        z -= Complex64::ONE;
        z *= Complex64::I;
        assert_eq!(z, -Complex64::ONE);
    }

    #[test]
    fn display_and_finite() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
    }

    #[test]
    fn from_real() {
        let z: Complex64 = 2.5.into();
        assert_eq!(z, Complex64::new(2.5, 0.0));
    }
}
