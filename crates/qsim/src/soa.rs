//! Structure-of-arrays state kernels for the evaluation hot path.
//!
//! [`SplitState`] stores a register as two parallel `Vec<f64>` planes
//! (all real parts, all imaginary parts) instead of the
//! array-of-structs `Vec<Complex64>` of [`StateVector`]. Every hot
//! kernel then becomes a straight-line loop over independent `f64`
//! streams — exactly the shape LLVM's autovectorizer turns into packed
//! SIMD — and large sweeps are additionally **cache-blocked**: the QAOA
//! mixing layer applies every low qubit inside one [`TILE`]-sized tile
//! while it is resident, collapsing `min(n, TILE_BITS)` full-state
//! passes into one. At n = 20 that takes a depth-2 evaluation from 44
//! full 16 MiB sweeps to 16.
//!
//! # Bit-parity contract
//!
//! Per amplitude, every kernel performs **the same floating-point
//! operations in the same order** as the scalar [`StateVector`]
//! reference kernels ([`StateVector::apply_phase_levels`],
//! [`StateVector::apply_rx_layer`]), so the amplitudes produced are
//! bit-identical to the scalar path — tiling only reorders *which
//! amplitude is visited when*, never the arithmetic applied to it
//! (verified by `tests/tests/kernel_parity.rs`).
//!
//! Reductions (expectations, adjoint-gradient sums) are computed as
//! per-[`TILE`] partial sums combined in tile-index order. The tile
//! size is a compile-time constant, **independent of the thread
//! count**, so a reduction returns bit-identical results at 1 thread
//! and at N threads — the invariant the engine's serial ≡ parallel and
//! sharded ≡ unsharded guarantees rest on. (A tiled sum is *not*
//! bit-identical to one long sequential sum, which is why the
//! reduction order is fixed here once and used by every caller.)
//!
//! # Within-state parallelism
//!
//! Every kernel takes a `threads` budget. For registers of at least
//! [`PAR_MIN_DIM`] amplitudes, work is split into per-tile items and
//! fanned out across scoped worker threads (`std::thread::scope` — no
//! `unsafe`, no shared mutable aliasing: each item owns disjoint
//! `&mut` tile slices). Below the threshold, or with a budget of 1,
//! kernels run inline. Because tiling is fixed and partials are
//! combined in index order, the budget never influences results —
//! only wall-clock time. The budget is typically set per job by
//! `engine::Pool`'s within-job fan-out (see `Pool::run_ordered_fanout`).

use crate::{Complex64, StateVector};

/// Amplitudes per cache tile (`2^TILE_BITS`). One tile is 256 KiB per
/// plane pair — small enough to stay L2-resident through all
/// `TILE_BITS` low-qubit mixing sub-layers applied to it, large enough
/// that only the topmost qubits of big registers need separate
/// full-state streaming passes (n = 16: two of them; n = 20: six).
pub const TILE: usize = 1 << TILE_BITS;

/// `log2(TILE)`: the number of mixing-layer qubits applied tile-locally.
pub const TILE_BITS: usize = 14;

/// Minimum register dimension (amplitude count) before a `threads > 1`
/// budget actually fans work out to scoped threads. Below this, spawn
/// overhead outweighs the kernel cost and everything runs inline.
pub const PAR_MIN_DIM: usize = 1 << 17;

/// A pure `n`-qubit state in split re/im (structure-of-arrays) form.
///
/// The SIMD-friendly counterpart of [`StateVector`], used by the QAOA
/// evaluation hot path (`qaoa::EvalContext`). Kernels here are
/// infallible: callers guarantee width agreement between the state and
/// its observables (the evaluation context resizes on width switches),
/// and the kernels `debug_assert!` it.
///
/// # Example
///
/// ```
/// use qsim::{soa::SplitState, StateVector};
/// let mut s = SplitState::plus_state(3);
/// s.apply_rx_layer(0.7, 1);
/// let mut reference = StateVector::plus_state(3);
/// reference.apply_rx_layer(0.7);
/// // SoA kernels are bit-identical to the scalar reference.
/// assert_eq!(s.to_state_vector(), reference);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SplitState {
    n_qubits: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitState {
    /// The uniform superposition `|+…+⟩` — the QAOA input state.
    ///
    /// Like [`StateVector::plus_state`], performs no width check
    /// beyond what allocation enforces; the evaluation stack bounds
    /// widths upstream.
    #[must_use]
    pub fn plus_state(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        // lint:allow(no-lossy-as) dim <= 2^63 is exactly representable in f64 for any simulable register
        let amp = 1.0 / (dim as f64).sqrt();
        Self {
            n_qubits,
            re: vec![amp; dim],
            im: vec![0.0; dim],
        }
    }

    /// Converts from an array-of-structs state.
    #[must_use]
    pub fn from_state_vector(state: &StateVector) -> Self {
        Self {
            n_qubits: state.n_qubits(),
            re: state.amplitudes().iter().map(|a| a.re).collect(),
            im: state.amplitudes().iter().map(|a| a.im).collect(),
        }
    }

    /// Materializes an array-of-structs copy (interop/test path; the
    /// hot path never converts).
    #[must_use]
    pub fn to_state_vector(&self) -> StateVector {
        let amps: Vec<Complex64> = self
            .re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| Complex64::new(re, im))
            .collect();
        StateVector::from_amplitudes(amps).unwrap_or_else(|_| StateVector::zero_state(0))
    }

    /// Number of qubits.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Dimension `2^n` of the Hilbert space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// The real plane.
    #[must_use]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary plane.
    #[must_use]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        Complex64::new(self.re[index], self.im[index])
    }

    /// The effective fan-out for one kernel call on this state.
    fn fanout(&self, threads: usize) -> usize {
        if self.dim() >= PAR_MIN_DIM {
            threads.max(1)
        } else {
            1
        }
    }

    /// Resets to `|+…+⟩` in place, reusing both planes — byte-for-byte
    /// equivalent to a fresh [`SplitState::plus_state`] of the same
    /// width.
    pub fn reset_to_plus(&mut self, threads: usize) {
        // lint:allow(no-lossy-as) dim <= 2^63 is exactly representable in f64 for any simulable register
        let amp = 1.0 / (self.dim() as f64).sqrt();
        let threads = self.fanout(threads);
        for_each_tile(&mut self.re, &mut self.im, threads, &|_, re, im| {
            re.fill(amp);
            im.fill(0.0);
        });
    }

    /// Multiplies amplitude `i` by `table[level_of[i]]`, where the
    /// table arrives split into re/im planes — the SoA counterpart of
    /// [`StateVector::apply_phase_levels`], bit-identical to it.
    ///
    /// Width agreement (`level_of.len() == dim()`, table indices in
    /// range) is the caller's contract, `debug_assert!`ed here.
    pub fn apply_phase_levels(
        &mut self,
        level_of: &[u32],
        table_re: &[f64],
        table_im: &[f64],
        threads: usize,
    ) {
        debug_assert_eq!(level_of.len(), self.dim());
        debug_assert_eq!(table_re.len(), table_im.len());
        let threads = self.fanout(threads);
        for_each_tile(&mut self.re, &mut self.im, threads, &|start, re, im| {
            phase_tile(
                re,
                im,
                &level_of[start..start + re.len()],
                table_re,
                table_im,
            );
        });
    }

    /// Applies `RX(θ)` to every qubit — the QAOA mixing layer —
    /// bit-identical to [`StateVector::apply_rx_layer`].
    ///
    /// Qubits `0..TILE_BITS` are applied tile-locally (one pass over
    /// the state instead of one per qubit); each remaining qubit is a
    /// streaming butterfly over contiguous `stride`-long blocks, which
    /// vectorize for every stride.
    pub fn apply_rx_layer(&mut self, theta: f64, threads: usize) {
        let (s, co) = (theta / 2.0).sin_cos();
        let threads = self.fanout(threads);
        let n_low = self.n_qubits.min(TILE_BITS);
        for_each_tile(&mut self.re, &mut self.im, threads, &|_, re, im| {
            rx_tile(re, im, n_low, s, co);
        });
        for qubit in TILE_BITS..self.n_qubits {
            self.rx_high_pass(1 << qubit, s, co, threads);
        }
    }

    /// One fused pass: phase separation then the tile-local part of
    /// the mixing layer, while each tile is cache-resident; then the
    /// high-qubit butterflies. Bit-identical to
    /// [`SplitState::apply_phase_levels`] followed by
    /// [`SplitState::apply_rx_layer`] — fusion reorders memory visits,
    /// not the per-amplitude arithmetic.
    pub fn apply_phase_rx(
        &mut self,
        level_of: &[u32],
        table_re: &[f64],
        table_im: &[f64],
        theta: f64,
        threads: usize,
    ) {
        debug_assert_eq!(level_of.len(), self.dim());
        let (s, co) = (theta / 2.0).sin_cos();
        let threads = self.fanout(threads);
        let n_low = self.n_qubits.min(TILE_BITS);
        for_each_tile(&mut self.re, &mut self.im, threads, &|start, re, im| {
            phase_tile(
                re,
                im,
                &level_of[start..start + re.len()],
                table_re,
                table_im,
            );
            rx_tile(re, im, n_low, s, co);
        });
        for qubit in TILE_BITS..self.n_qubits {
            self.rx_high_pass(1 << qubit, s, co, threads);
        }
    }

    /// One streaming butterfly pass for a qubit with `stride >= TILE`:
    /// pair blocks `[base, base+stride)` / `[base+stride, base+2·stride)`
    /// are contiguous, so the pass is pure sequential streams, split
    /// into per-tile work items for the fan-out.
    fn rx_high_pass(&mut self, stride: usize, s: f64, co: f64, threads: usize) {
        /// One butterfly work item: `(re_lo, im_lo, re_hi, im_hi)`.
        type Quad<'a> = (&'a mut [f64], &'a mut [f64], &'a mut [f64], &'a mut [f64]);
        let mut items: Vec<Quad> = Vec::new();
        for (re_block, im_block) in self
            .re
            .chunks_mut(2 * stride)
            .zip(self.im.chunks_mut(2 * stride))
        {
            let (re_lo, re_hi) = re_block.split_at_mut(stride);
            let (im_lo, im_hi) = im_block.split_at_mut(stride);
            for (((rl, il), rh), ih) in re_lo
                .chunks_mut(TILE)
                .zip(im_lo.chunks_mut(TILE))
                .zip(re_hi.chunks_mut(TILE))
                .zip(im_hi.chunks_mut(TILE))
            {
                items.push((rl, il, rh, ih));
            }
        }
        run_items(threads, items, &|(rl, il, rh, ih)| {
            rx_butterfly(rl, il, rh, ih, s, co);
        });
    }

    /// Overwrites this state with `src` scaled elementwise by `diag`
    /// (`out_z = src_z · diag_z`) — the adjoint costate seed
    /// `|λ⟩ = C|ψ⟩` for a diagonal cost `C`.
    pub fn assign_scaled(&mut self, src: &SplitState, diag: &[f64], threads: usize) {
        debug_assert_eq!(src.dim(), self.dim());
        debug_assert_eq!(diag.len(), self.dim());
        let threads = self.fanout(threads);
        for_each_tile(&mut self.re, &mut self.im, threads, &|start, re, im| {
            let end = start + re.len();
            scale_tile(
                re,
                im,
                &src.re[start..end],
                &src.im[start..end],
                &diag[start..end],
            );
        });
    }

    /// `⟨ψ|D|ψ⟩ = Σ_z (re_z² + im_z²)·d_z` as a tiled deterministic
    /// reduction (fixed [`TILE`] partials combined in index order —
    /// identical at any thread budget).
    #[must_use]
    pub fn expectation_diag(&self, diag: &[f64], threads: usize) -> f64 {
        debug_assert_eq!(diag.len(), self.dim());
        reduce_tiles(self.dim(), self.fanout(threads), &|start, len| {
            let end = start + len;
            dot_norm_tile(
                &self.re[start..end],
                &self.im[start..end],
                &diag[start..end],
            )
        })
    }
}

/// `Σ_q Σ_z Im(λ̄_z · ψ_{z ⊕ 2^q})` — the mixing-layer gradient
/// reduction `Σ_q Im ⟨λ|X_q|ψ⟩`, tiled deterministically: each tile
/// accumulates its qubits in order (in-tile butterflies for low
/// qubits, streaming partner loads for high ones), partials combine in
/// tile order. Identical at any thread budget.
#[must_use]
pub fn sum_im_cross_x(lambda: &SplitState, psi: &SplitState, threads: usize) -> f64 {
    debug_assert_eq!(lambda.dim(), psi.dim());
    let n_qubits = psi.n_qubits();
    reduce_tiles(psi.dim(), psi.fanout(threads), &|start, len| {
        let mut acc = 0.0;
        for qubit in 0..n_qubits {
            let stride = 1usize << qubit;
            if stride < len {
                // Both butterfly halves live inside this tile.
                let mut base = start;
                while base < start + len {
                    let (lo, hi) = (base..base + stride, base + stride..base + 2 * stride);
                    acc += cross_x_tile(
                        &lambda.re[lo.clone()],
                        &lambda.im[lo.clone()],
                        &lambda.re[hi.clone()],
                        &lambda.im[hi.clone()],
                        &psi.re[lo.clone()],
                        &psi.im[lo.clone()],
                        &psi.re[hi.clone()],
                        &psi.im[hi],
                    );
                    base += 2 * stride;
                }
            } else {
                // The partner block is a contiguous run in another tile
                // (read-only, so crossing tile boundaries is fine).
                let partner = start ^ stride;
                let (a, b) = (start..start + len, partner..partner + len);
                acc += cross_half_tile(
                    &lambda.re[a.clone()],
                    &lambda.im[a],
                    &psi.re[b.clone()],
                    &psi.im[b],
                );
            }
        }
        acc
    })
}

/// `Σ_z d_z · Im(λ̄_z ψ_z)` — the phase-layer gradient reduction,
/// tiled deterministically like [`SplitState::expectation_diag`].
#[must_use]
pub fn sum_diag_im_cross(
    diag: &[f64],
    lambda: &SplitState,
    psi: &SplitState,
    threads: usize,
) -> f64 {
    debug_assert_eq!(diag.len(), psi.dim());
    debug_assert_eq!(lambda.dim(), psi.dim());
    reduce_tiles(psi.dim(), psi.fanout(threads), &|start, len| {
        let end = start + len;
        diag_cross_tile(
            &diag[start..end],
            &lambda.re[start..end],
            &lambda.im[start..end],
            &psi.re[start..end],
            &psi.im[start..end],
        )
    })
}

// --- tile-level kernels (straight-line, autovectorizable) -----------------

/// Phase separation on one tile: `a *= table[level]` with the complex
/// product expanded exactly as `Complex64::mul` computes it.
fn phase_tile(
    re: &mut [f64],
    im: &mut [f64],
    level_of: &[u32],
    table_re: &[f64],
    table_im: &[f64],
) {
    let im = &mut im[..re.len()];
    let level_of = &level_of[..re.len()];
    for ((r, i), &l) in re.iter_mut().zip(im.iter_mut()).zip(level_of) {
        // lint:allow(no-lossy-as) u32 -> usize is value-preserving on every supported target
        let l = l as usize;
        let (tr, ti) = (table_re[l], table_im[l]);
        let (r0, i0) = (*r, *i);
        *r = r0 * tr - i0 * ti;
        *i = r0 * ti + i0 * tr;
    }
}

/// Costate seed on one tile: `out = src · d` elementwise.
fn scale_tile(re: &mut [f64], im: &mut [f64], src_re: &[f64], src_im: &[f64], diag: &[f64]) {
    let n = re.len();
    let (im, src_re, src_im, diag) = (&mut im[..n], &src_re[..n], &src_im[..n], &diag[..n]);
    for k in 0..n {
        re[k] = src_re[k] * diag[k];
        im[k] = src_im[k] * diag[k];
    }
}

/// `Σ (re² + im²)·d` over one tile, sequential in index order.
fn dot_norm_tile(re: &[f64], im: &[f64], diag: &[f64]) -> f64 {
    let n = re.len();
    let (im, diag) = (&im[..n], &diag[..n]);
    let mut acc = 0.0;
    for k in 0..n {
        acc += (re[k] * re[k] + im[k] * im[k]) * diag[k];
    }
    acc
}

/// `Σ d·(λre·ψim − λim·ψre)` over one tile.
fn diag_cross_tile(diag: &[f64], lre: &[f64], lim: &[f64], sre: &[f64], sim: &[f64]) -> f64 {
    let n = diag.len();
    let (lre, lim, sre, sim) = (&lre[..n], &lim[..n], &sre[..n], &sim[..n]);
    let mut acc = 0.0;
    for k in 0..n {
        acc += diag[k] * (lre[k] * sim[k] - lim[k] * sre[k]);
    }
    acc
}

/// The RX butterfly over two equal-length contiguous blocks, with the
/// exact arithmetic of the scalar reference:
/// `a0' = c·a0 − i·s·a1`, `a1' = c·a1 − i·s·a0`, expanded.
fn rx_butterfly(
    lo_re: &mut [f64],
    lo_im: &mut [f64],
    hi_re: &mut [f64],
    hi_im: &mut [f64],
    s: f64,
    co: f64,
) {
    let n = lo_re.len();
    let (lo_im, hi_re, hi_im) = (&mut lo_im[..n], &mut hi_re[..n], &mut hi_im[..n]);
    for k in 0..n {
        let (r0, i0, r1, i1) = (lo_re[k], lo_im[k], hi_re[k], hi_im[k]);
        lo_re[k] = co * r0 + s * i1;
        lo_im[k] = co * i0 - s * r1;
        hi_re[k] = co * r1 + s * i0;
        hi_im[k] = co * i1 - s * r0;
    }
}

/// RX on qubit 0 within a tile: interleaved `(2k, 2k+1)` pairs,
/// special-cased so the stride-1 sub-layer still compiles to packed
/// loads instead of scalar gathers.
fn rx_pairs(re: &mut [f64], im: &mut [f64], s: f64, co: f64) {
    for (r, i) in re.chunks_exact_mut(2).zip(im.chunks_exact_mut(2)) {
        let (r0, i0, r1, i1) = (r[0], i[0], r[1], i[1]);
        r[0] = co * r0 + s * i1;
        i[0] = co * i0 - s * r1;
        r[1] = co * r1 + s * i0;
        i[1] = co * i1 - s * r0;
    }
}

/// All mixing sub-layers for qubits `0..n_low` applied to one resident
/// tile (qubit order preserved, so the arithmetic per amplitude matches
/// the scalar one-pass-per-qubit reference exactly).
fn rx_tile(re: &mut [f64], im: &mut [f64], n_low: usize, s: f64, co: f64) {
    if n_low == 0 {
        return;
    }
    rx_pairs(re, im, s, co);
    for qubit in 1..n_low {
        let stride = 1usize << qubit;
        for (re_block, im_block) in re.chunks_mut(2 * stride).zip(im.chunks_mut(2 * stride)) {
            let (re_lo, re_hi) = re_block.split_at_mut(stride);
            let (im_lo, im_hi) = im_block.split_at_mut(stride);
            rx_butterfly(re_lo, im_lo, re_hi, im_hi, s, co);
        }
    }
}

/// Both cross terms of one in-tile butterfly block:
/// `Σ_k Im(λ̄_lo ψ_hi) + Im(λ̄_hi ψ_lo)`.
#[allow(clippy::too_many_arguments)]
fn cross_x_tile(
    l_lo_re: &[f64],
    l_lo_im: &[f64],
    l_hi_re: &[f64],
    l_hi_im: &[f64],
    s_lo_re: &[f64],
    s_lo_im: &[f64],
    s_hi_re: &[f64],
    s_hi_im: &[f64],
) -> f64 {
    let n = l_lo_re.len();
    let (l_lo_im, l_hi_re, l_hi_im) = (&l_lo_im[..n], &l_hi_re[..n], &l_hi_im[..n]);
    let (s_lo_re, s_lo_im, s_hi_re, s_hi_im) =
        (&s_lo_re[..n], &s_lo_im[..n], &s_hi_re[..n], &s_hi_im[..n]);
    let mut acc = 0.0;
    for k in 0..n {
        acc += l_lo_re[k] * s_hi_im[k] - l_lo_im[k] * s_hi_re[k] + l_hi_re[k] * s_lo_im[k]
            - l_hi_im[k] * s_lo_re[k];
    }
    acc
}

/// One direction of the cross term when the partner block lives in
/// another tile: `Σ_k Im(λ̄_a ψ_b)`.
fn cross_half_tile(l_re: &[f64], l_im: &[f64], s_re: &[f64], s_im: &[f64]) -> f64 {
    let n = l_re.len();
    let (l_im, s_re, s_im) = (&l_im[..n], &s_re[..n], &s_im[..n]);
    let mut acc = 0.0;
    for k in 0..n {
        acc += l_re[k] * s_im[k] - l_im[k] * s_re[k];
    }
    acc
}

// --- deterministic fan-out ------------------------------------------------

/// Runs `f` once per work item, item `i` on scoped worker `i % workers`
/// (one share runs on the calling thread). With a budget of 1 — or a
/// single item — everything runs inline in item order. Items own their
/// data (disjoint `&mut` slices or partial-sum slots), so distribution
/// can never influence results, only wall-clock time.
fn run_items<T: Send, F: Fn(T) + Sync>(threads: usize, items: Vec<T>, f: &F) {
    let workers = threads.clamp(1, items.len().max(1));
    if workers == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let mut buckets: Vec<Vec<T>> = Vec::new();
    buckets.resize_with(workers, Vec::new);
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push(item);
    }
    std::thread::scope(|scope| {
        let mine = buckets.swap_remove(0);
        for bucket in buckets {
            scope.spawn(move || {
                for item in bucket {
                    f(item);
                }
            });
        }
        for item in mine {
            f(item);
        }
    });
}

/// Splits both planes into [`TILE`]-sized tiles and runs
/// `f(tile_start, re_tile, im_tile)` for each, fanned out over
/// `threads`.
fn for_each_tile<F>(re: &mut [f64], im: &mut [f64], threads: usize, f: &F)
where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    let items: Vec<(usize, &mut [f64], &mut [f64])> = re
        .chunks_mut(TILE)
        .zip(im.chunks_mut(TILE))
        .enumerate()
        .map(|(c, (r, i))| (c * TILE, r, i))
        .collect();
    run_items(threads, items, &|(start, r, i)| f(start, r, i));
}

/// Tiled deterministic reduction: `f(tile_start, tile_len)` produces
/// one partial per [`TILE`], computed on any worker but **combined in
/// tile-index order** — the reduction order is a pure function of
/// `dim`, never of the thread budget.
fn reduce_tiles<F>(dim: usize, threads: usize, f: &F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let n_tiles = dim.div_ceil(TILE);
    let mut partials = vec![0.0f64; n_tiles];
    let items: Vec<(usize, &mut f64)> = partials.iter_mut().enumerate().collect();
    run_items(threads, items, &|(c, slot)| {
        let start = c * TILE;
        *slot = f(start, TILE.min(dim - start));
    });
    partials.iter().fold(0.0, |acc, p| acc + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bit_identical(soa: &SplitState, reference: &StateVector) {
        assert_eq!(soa.dim(), reference.dim());
        for (k, a) in reference.amplitudes().iter().enumerate() {
            assert_eq!(
                soa.re[k].to_bits(),
                a.re.to_bits(),
                "re mismatch at index {k}"
            );
            assert_eq!(
                soa.im[k].to_bits(),
                a.im.to_bits(),
                "im mismatch at index {k}"
            );
        }
    }

    fn phase_table(levels: &[f64], gamma: f64) -> (Vec<Complex64>, Vec<f64>, Vec<f64>) {
        let aos: Vec<Complex64> = levels.iter().map(|&v| Complex64::cis(-gamma * v)).collect();
        let re = aos.iter().map(|c| c.re).collect();
        let im = aos.iter().map(|c| c.im).collect();
        (aos, re, im)
    }

    #[test]
    fn plus_state_matches_scalar() {
        for n in 0..6 {
            assert_bit_identical(&SplitState::plus_state(n), &StateVector::plus_state(n));
        }
    }

    #[test]
    fn reset_matches_fresh() {
        let mut s = SplitState::plus_state(5);
        s.apply_rx_layer(0.9, 1);
        s.reset_to_plus(1);
        assert_eq!(s, SplitState::plus_state(5));
    }

    #[test]
    fn rx_layer_matches_scalar_across_widths() {
        // Widths straddle TILE_BITS so both the tile-local and the
        // high-qubit streaming paths are exercised.
        for n in [1usize, 2, 3, TILE_BITS, TILE_BITS + 1, TILE_BITS + 2] {
            let mut reference = StateVector::plus_state(n);
            let diag: Vec<f64> = (0..1usize << n).map(|z| (z % 7) as f64).collect();
            reference.apply_phase_from_diag(&diag, 0.31).unwrap();
            let mut soa = SplitState::from_state_vector(&reference);
            reference.apply_rx_layer(0.83);
            soa.apply_rx_layer(0.83, 1);
            assert_bit_identical(&soa, &reference);
        }
    }

    #[test]
    fn phase_levels_matches_scalar() {
        let n = TILE_BITS + 1;
        let level_of: Vec<u32> = (0..1usize << n).map(|z| (z % 5) as u32).collect();
        let levels: Vec<f64> = (0..5).map(|l| l as f64 * 0.7).collect();
        let (aos, tre, tim) = phase_table(&levels, 1.3);
        let mut reference = StateVector::plus_state(n);
        let mut soa = SplitState::from_state_vector(&reference);
        reference.apply_phase_levels(&level_of, &aos).unwrap();
        soa.apply_phase_levels(&level_of, &tre, &tim, 1);
        assert_bit_identical(&soa, &reference);
    }

    #[test]
    fn fused_stage_equals_separate_kernels() {
        let n = TILE_BITS + 1;
        let level_of: Vec<u32> = (0..1usize << n).map(|z| (z % 3) as u32).collect();
        let levels = [0.0, 1.5, 2.5];
        let (_, tre, tim) = phase_table(&levels, 0.9);
        let mut fused = SplitState::plus_state(n);
        let mut separate = fused.clone();
        fused.apply_phase_rx(&level_of, &tre, &tim, 1.1, 1);
        separate.apply_phase_levels(&level_of, &tre, &tim, 1);
        separate.apply_rx_layer(1.1, 1);
        assert_eq!(fused, separate);
    }

    #[test]
    fn kernels_identical_at_any_thread_budget() {
        // The budget must never change results — even above the fan-out
        // threshold this holds by construction, but the cheap widths
        // here at least pin the inline/fan-out dispatch seam.
        let n = TILE_BITS + 2;
        let level_of: Vec<u32> = (0..1usize << n).map(|z| (z % 4) as u32).collect();
        let (_, tre, tim) = phase_table(&[0.0, 1.0, 2.0, 3.0], 0.4);
        let diag: Vec<f64> = (0..1usize << n).map(|z| (z % 4) as f64).collect();
        let mut a = SplitState::plus_state(n);
        let mut b = SplitState::plus_state(n);
        a.apply_phase_rx(&level_of, &tre, &tim, 0.7, 1);
        b.apply_phase_rx(&level_of, &tre, &tim, 0.7, 4);
        assert_eq!(a, b);
        assert_eq!(
            a.expectation_diag(&diag, 1).to_bits(),
            b.expectation_diag(&diag, 4).to_bits()
        );
        let mut la = SplitState::plus_state(n);
        let mut lb = SplitState::plus_state(n);
        la.assign_scaled(&a, &diag, 1);
        lb.assign_scaled(&b, &diag, 4);
        assert_eq!(la, lb);
        assert_eq!(
            sum_im_cross_x(&la, &a, 1).to_bits(),
            sum_im_cross_x(&lb, &b, 4).to_bits()
        );
        assert_eq!(
            sum_diag_im_cross(&diag, &la, &a, 1).to_bits(),
            sum_diag_im_cross(&diag, &lb, &b, 4).to_bits()
        );
    }

    #[test]
    fn expectation_diag_matches_scalar_for_single_tile() {
        // Below one TILE the tiled reduction degenerates to the scalar
        // sequential sum, so the old and new paths agree bitwise.
        let n = 6;
        let diag: Vec<f64> = (0..1usize << n).map(|z| (z % 9) as f64 - 3.0).collect();
        let reference = StateVector::plus_state(n);
        let soa = SplitState::from_state_vector(&reference);
        let scalar: f64 = reference
            .amplitudes()
            .iter()
            .zip(&diag)
            .map(|(a, d)| a.norm_sqr() * d)
            .sum();
        assert_eq!(soa.expectation_diag(&diag, 1).to_bits(), scalar.to_bits());
    }

    #[test]
    fn round_trip_conversion_is_lossless() {
        let mut reference = StateVector::plus_state(4);
        reference
            .apply_phase_from_diag(&(0..16).map(|z| z as f64).collect::<Vec<_>>(), 0.3)
            .unwrap();
        let soa = SplitState::from_state_vector(&reference);
        assert_eq!(soa.to_state_vector(), reference);
        assert_eq!(soa.amplitude(3), reference.amplitude(3));
    }
}
