//! State-vector quantum circuit simulator.
//!
//! This crate is the workspace's substitute for the QuTiP simulator the
//! paper used as its "quantum computer": a dense state-vector simulator with
//! a small gate set, a circuit IR, expectation values and measurement
//! sampling. It is sized for NISQ-scale QAOA studies (the paper uses 8-qubit
//! MaxCut instances, i.e. 256 amplitudes).
//!
//! Layout:
//!
//! * [`Complex64`] — first-party complex arithmetic (no external crates),
//! * [`StateVector`] — `2^n` amplitudes with single/two-qubit gate kernels,
//! * [`soa::SplitState`] — split re/im (structure-of-arrays) kernels for the
//!   QAOA evaluation hot path: autovectorizable, cache-blocked, with
//!   deterministic within-state parallelism,
//! * [`gates`] — standard gate matrices (H, X, Y, Z, RX, RY, RZ, phase),
//! * [`Circuit`] / [`Gate`] — a replayable circuit IR,
//! * [`DiagonalObservable`] — fast diagonal (cost-Hamiltonian) expectations,
//! * [`sample_counts`] — projective measurement in the computational basis.
//!
//! Qubit `k` owns bit `k` of the basis-state index (little-endian), so basis
//! state `|q_{n-1} … q_1 q_0⟩` has index `Σ q_k 2^k`.
//!
//! # Example: Bell state
//!
//! ```
//! use qsim::{Circuit, StateVector};
//!
//! # fn main() -> Result<(), qsim::QsimError> {
//! let mut circuit = Circuit::new(2);
//! circuit.h(0).cnot(0, 1);
//! let state = circuit.run(StateVector::zero_state(2))?;
//! let probs = state.probabilities();
//! assert!((probs[0] - 0.5).abs() < 1e-12); // |00⟩
//! assert!((probs[3] - 0.5).abs() < 1e-12); // |11⟩
//! # Ok(())
//! # }
//! ```

mod channels;
mod circuit;
mod complex;
mod density;
mod error;
mod expectation;
pub mod gates;
mod sampling;
pub mod soa;
mod state;
pub mod twoqubit;

pub use channels::{KrausChannel, NoiseModel};
pub use circuit::{Circuit, Gate};
pub use complex::Complex64;
pub use density::{DensityMatrix, MAX_DM_QUBITS};
pub use error::QsimError;
pub use expectation::{DiagonalObservable, PauliZString};
pub use sampling::{
    sample_counts, sample_density_counts, sample_density_indices, sample_indices, CdfSampler,
};
pub use state::StateVector;
pub use twoqubit::Gate4;
