use crate::channels::{KrausChannel, NoiseModel};
use crate::circuit::{Circuit, Gate};
use crate::gates::{self, Gate2};
use crate::{Complex64, DiagonalObservable, QsimError, StateVector};

/// Widest register the density-matrix simulator will allocate
/// (`4^n` complex entries; 12 qubits ≈ 256 MiB).
pub const MAX_DM_QUBITS: usize = 12;

/// A mixed quantum state ρ on `n` qubits, stored as a dense row-major
/// `2ⁿ × 2ⁿ` complex matrix.
///
/// The state-vector simulator ([`StateVector`]) covers the paper's
/// noiseless experiments; this type extends the substrate to open-system
/// dynamics via Kraus [`KrausChannel`]s, enabling the `noisy_qaoa` study of
/// the two-level flow under gate errors. Qubit index conventions (bit `q`
/// of the basis index) match [`StateVector`] exactly, and
/// [`DensityMatrix::run`] on a noiseless model agrees with the pure-state
/// simulation to machine precision (cross-validated in the test suite).
///
/// # Example
///
/// ```
/// use qsim::{Circuit, DensityMatrix, NoiseModel};
/// # fn main() -> Result<(), qsim::QsimError> {
/// // A noisy Bell pair keeps unit trace but loses purity.
/// let mut circuit = Circuit::new(2);
/// circuit.h(0).cnot(0, 1);
/// let mut rho = DensityMatrix::zero_state(2)?;
/// rho.run(&circuit, &NoiseModel::uniform_depolarizing(0.0, 0.05)?)?;
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// assert!(rho.purity() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    /// Row-major entries ρ[r * dim + c].
    elems: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// [`QsimError::TooManyQubits`] beyond [`MAX_DM_QUBITS`].
    pub fn zero_state(n_qubits: usize) -> Result<Self, QsimError> {
        if n_qubits > MAX_DM_QUBITS {
            return Err(QsimError::TooManyQubits { n_qubits });
        }
        let dim = 1usize << n_qubits;
        let mut elems = vec![Complex64::ZERO; dim * dim];
        elems[0] = Complex64::ONE;
        Ok(Self {
            n_qubits,
            dim,
            elems,
        })
    }

    /// The uniform-superposition pure state `|+…+⟩⟨+…+|` that starts every
    /// QAOA circuit.
    ///
    /// # Errors
    ///
    /// [`QsimError::TooManyQubits`] beyond [`MAX_DM_QUBITS`].
    pub fn plus_state(n_qubits: usize) -> Result<Self, QsimError> {
        Self::from_state_vector(&StateVector::plus_state(n_qubits))
    }

    /// The maximally mixed state `I / 2ⁿ`.
    ///
    /// # Errors
    ///
    /// [`QsimError::TooManyQubits`] beyond [`MAX_DM_QUBITS`].
    pub fn maximally_mixed(n_qubits: usize) -> Result<Self, QsimError> {
        if n_qubits > MAX_DM_QUBITS {
            return Err(QsimError::TooManyQubits { n_qubits });
        }
        let dim = 1usize << n_qubits;
        let mut elems = vec![Complex64::ZERO; dim * dim];
        let w = 1.0 / dim as f64;
        for r in 0..dim {
            elems[r * dim + r] = Complex64::new(w, 0.0);
        }
        Ok(Self {
            n_qubits,
            dim,
            elems,
        })
    }

    /// The projector `|ψ⟩⟨ψ|` of a pure state.
    ///
    /// # Errors
    ///
    /// [`QsimError::TooManyQubits`] beyond [`MAX_DM_QUBITS`].
    pub fn from_state_vector(state: &StateVector) -> Result<Self, QsimError> {
        let n_qubits = state.n_qubits();
        if n_qubits > MAX_DM_QUBITS {
            return Err(QsimError::TooManyQubits { n_qubits });
        }
        let dim = state.dim();
        let amps = state.amplitudes();
        let mut elems = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            for col in 0..dim {
                elems[r * dim + col] = amps[r] * amps[col].conj();
            }
        }
        Ok(Self {
            n_qubits,
            dim,
            elems,
        })
    }

    /// Number of qubits.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2ⁿ`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Matrix element `ρ[r, c]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[must_use]
    pub fn element(&self, r: usize, c: usize) -> Complex64 {
        assert!(r < self.dim && c < self.dim, "index out of range");
        self.elems[r * self.dim + c]
    }

    /// Trace `Tr ρ` (1 for any physical state; real up to rounding).
    #[must_use]
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|r| self.elems[r * self.dim + r].re).sum()
    }

    /// Purity `Tr ρ²` ∈ `[1/2ⁿ, 1]`; exactly 1 for pure states.
    #[must_use]
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{r,c} ρ_{rc} ρ_{cr} = Σ_{r,c} |ρ_{rc}|² for Hermitian ρ.
        self.elems.iter().map(|e| e.norm_sqr()).sum()
    }

    /// Measurement probability of the computational basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    #[must_use]
    pub fn probability(&self, index: usize) -> f64 {
        assert!(index < self.dim, "index out of range");
        self.elems[index * self.dim + index].re.max(0.0)
    }

    /// All `2ⁿ` basis-state probabilities (the diagonal).
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.probability(i)).collect()
    }

    /// Expectation `Tr(ρ O)` of a diagonal observable — the QAOA cost
    /// readout.
    ///
    /// # Errors
    ///
    /// [`QsimError::DimensionMismatch`] if dimensions disagree.
    pub fn expectation_diagonal(&self, obs: &DiagonalObservable) -> Result<f64, QsimError> {
        if obs.diagonal().len() != self.dim {
            return Err(QsimError::DimensionMismatch {
                expected: obs.diagonal().len(),
                actual: self.dim,
            });
        }
        Ok(obs
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, &o)| o * self.elems[i * self.dim + i].re)
            .sum())
    }

    /// Max-norm deviation from Hermiticity (diagnostic; 0 for valid states).
    #[must_use]
    pub fn hermiticity_deviation(&self) -> f64 {
        let mut dev = 0.0_f64;
        for r in 0..self.dim {
            for c in (r..self.dim).skip(1) {
                dev = dev.max(
                    (self.elems[r * self.dim + c] - self.elems[c * self.dim + r].conj()).abs(),
                );
            }
        }
        dev
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), QsimError> {
        if qubit >= self.n_qubits {
            return Err(QsimError::QubitOutOfRange {
                qubit,
                n_qubits: self.n_qubits,
            });
        }
        Ok(())
    }

    /// Left-multiplies by a single-qubit operator: ρ → A ρ.
    fn left_mul_single(&mut self, qubit: usize, a: &Gate2) {
        let stride = 1usize << qubit;
        let dim = self.dim;
        let mut base = 0;
        while base < dim {
            for offset in base..base + stride {
                let r0 = offset;
                let r1 = offset + stride;
                for col in 0..dim {
                    let e0 = self.elems[r0 * dim + col];
                    let e1 = self.elems[r1 * dim + col];
                    self.elems[r0 * dim + col] = a[0][0] * e0 + a[0][1] * e1;
                    self.elems[r1 * dim + col] = a[1][0] * e0 + a[1][1] * e1;
                }
            }
            base += stride << 1;
        }
    }

    /// Right-multiplies by the adjoint of a single-qubit operator: ρ → ρ A†.
    fn right_mul_single_adjoint(&mut self, qubit: usize, a: &Gate2) {
        let stride = 1usize << qubit;
        let dim = self.dim;
        let mut base = 0;
        while base < dim {
            for offset in base..base + stride {
                let c0 = offset;
                let c1 = offset + stride;
                for r in 0..dim {
                    let e0 = self.elems[r * dim + c0];
                    let e1 = self.elems[r * dim + c1];
                    // (ρ A†)[r, c] = Σ_k ρ[r, k] conj(A[c, k]).
                    self.elems[r * dim + c0] = e0 * a[0][0].conj() + e1 * a[0][1].conj();
                    self.elems[r * dim + c1] = e0 * a[1][0].conj() + e1 * a[1][1].conj();
                }
            }
            base += stride << 1;
        }
    }

    /// Applies a single-qubit unitary: ρ → U ρ U†.
    ///
    /// # Errors
    ///
    /// [`QsimError::QubitOutOfRange`] for a bad index.
    pub fn apply_single(&mut self, qubit: usize, u: &Gate2) -> Result<(), QsimError> {
        self.check_qubit(qubit)?;
        self.left_mul_single(qubit, u);
        self.right_mul_single_adjoint(qubit, u);
        Ok(())
    }

    /// Applies a controlled single-qubit unitary (control must be `|1⟩`).
    ///
    /// # Errors
    ///
    /// * [`QsimError::QubitOutOfRange`] for a bad index.
    /// * [`QsimError::DuplicateQubit`] if `control == target`.
    pub fn apply_controlled(
        &mut self,
        control: usize,
        target: usize,
        u: &Gate2,
    ) -> Result<(), QsimError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(QsimError::DuplicateQubit { qubit: control });
        }
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let dim = self.dim;
        // Left multiplication by the controlled unitary.
        for r in 0..dim {
            if r & cmask != 0 && r & tmask == 0 {
                let r1 = r | tmask;
                for col in 0..dim {
                    let e0 = self.elems[r * dim + col];
                    let e1 = self.elems[r1 * dim + col];
                    self.elems[r * dim + col] = u[0][0] * e0 + u[0][1] * e1;
                    self.elems[r1 * dim + col] = u[1][0] * e0 + u[1][1] * e1;
                }
            }
        }
        // Right multiplication by its adjoint.
        for c in 0..dim {
            if c & cmask != 0 && c & tmask == 0 {
                let c1 = c | tmask;
                for r in 0..dim {
                    let e0 = self.elems[r * dim + c];
                    let e1 = self.elems[r * dim + c1];
                    self.elems[r * dim + c] = e0 * u[0][0].conj() + e1 * u[0][1].conj();
                    self.elems[r * dim + c1] = e0 * u[1][0].conj() + e1 * u[1][1].conj();
                }
            }
        }
        Ok(())
    }

    /// Applies a diagonal unitary given its `2ⁿ` phases:
    /// `ρ_{jk} → φ_j ρ_{jk} φ_k*`.
    ///
    /// # Errors
    ///
    /// [`QsimError::DimensionMismatch`] if `phases.len() != dim()`.
    pub fn apply_diagonal(&mut self, phases: &[Complex64]) -> Result<(), QsimError> {
        if phases.len() != self.dim {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim,
                actual: phases.len(),
            });
        }
        for r in 0..self.dim {
            for c in 0..self.dim {
                self.elems[r * self.dim + c] *= phases[r] * phases[c].conj();
            }
        }
        Ok(())
    }

    /// Applies a single-qubit Kraus channel: `ρ → Σ K ρ K†`.
    ///
    /// The sum is evaluated block-wise in place: every `2×2` sub-block of ρ
    /// addressed by the qubit's row/column pair is mapped through
    /// `Σ K B K†` in one pass, with no per-operator copies of the matrix
    /// (the earlier formulation cloned the full `4ⁿ` state once per Kraus
    /// operator, which dominated the noisy-QAOA objective's cost).
    ///
    /// # Errors
    ///
    /// [`QsimError::QubitOutOfRange`] for a bad index.
    pub fn apply_channel(&mut self, qubit: usize, channel: &KrausChannel) -> Result<(), QsimError> {
        self.check_qubit(qubit)?;
        if channel.is_identity() {
            return Ok(());
        }
        if let Some(p) = channel.as_depolarizing() {
            if p == 0.0 {
                return Ok(());
            }
            return self.apply_depolarizing(qubit, p);
        }
        let stride = 1usize << qubit;
        let dim = self.dim;
        let ops = channel.ops();
        let mut base_r = 0;
        while base_r < dim {
            for r0 in base_r..base_r + stride {
                let r1 = r0 + stride;
                let mut base_c = 0;
                while base_c < dim {
                    for c0 in base_c..base_c + stride {
                        let c1 = c0 + stride;
                        let b00 = self.elems[r0 * dim + c0];
                        let b01 = self.elems[r0 * dim + c1];
                        let b10 = self.elems[r1 * dim + c0];
                        let b11 = self.elems[r1 * dim + c1];
                        let mut n00 = Complex64::ZERO;
                        let mut n01 = Complex64::ZERO;
                        let mut n10 = Complex64::ZERO;
                        let mut n11 = Complex64::ZERO;
                        for k in ops {
                            let (ka, kb) = (k[0][0], k[0][1]);
                            let (kd, ke) = (k[1][0], k[1][1]);
                            // T = K B, then accumulate T K†.
                            let t00 = ka * b00 + kb * b10;
                            let t01 = ka * b01 + kb * b11;
                            let t10 = kd * b00 + ke * b10;
                            let t11 = kd * b01 + ke * b11;
                            n00 += t00 * ka.conj() + t01 * kb.conj();
                            n01 += t00 * kd.conj() + t01 * ke.conj();
                            n10 += t10 * ka.conj() + t11 * kb.conj();
                            n11 += t10 * kd.conj() + t11 * ke.conj();
                        }
                        self.elems[r0 * dim + c0] = n00;
                        self.elems[r0 * dim + c1] = n01;
                        self.elems[r1 * dim + c0] = n10;
                        self.elems[r1 * dim + c1] = n11;
                    }
                    base_c += stride << 1;
                }
            }
            base_r += stride << 1;
        }
        Ok(())
    }

    /// Closed form of the single-qubit depolarizing channel,
    /// `ρ → (1−p) ρ + p/3 (XρX + YρY + ZρZ)`, reduced per `2×2` block to
    /// a population blend and an off-diagonal shrink:
    ///
    /// ```text
    /// ρ00' = (1 − 2p/3) ρ00 + (2p/3) ρ11      ρ01' = (1 − 4p/3) ρ01
    /// ρ11' = (2p/3) ρ00 + (1 − 2p/3) ρ11      ρ10' = (1 − 4p/3) ρ10
    /// ```
    ///
    /// One real-coefficient pass instead of the four-operator Kraus sum —
    /// the channel cost drops by an order of magnitude, which dominates the
    /// noisy-QAOA objective.
    fn apply_depolarizing(&mut self, qubit: usize, p: f64) -> Result<(), QsimError> {
        let keep = 1.0 - 2.0 * p / 3.0;
        let swap = 2.0 * p / 3.0;
        let shrink = 1.0 - 4.0 * p / 3.0;
        let stride = 1usize << qubit;
        let dim = self.dim;
        let mut base_r = 0;
        while base_r < dim {
            for r0 in base_r..base_r + stride {
                let r1 = r0 + stride;
                let mut base_c = 0;
                while base_c < dim {
                    for c0 in base_c..base_c + stride {
                        let c1 = c0 + stride;
                        let b00 = self.elems[r0 * dim + c0];
                        let b11 = self.elems[r1 * dim + c1];
                        self.elems[r0 * dim + c0] = keep * b00 + swap * b11;
                        self.elems[r1 * dim + c1] = swap * b00 + keep * b11;
                        self.elems[r0 * dim + c1] = shrink * self.elems[r0 * dim + c1];
                        self.elems[r1 * dim + c0] = shrink * self.elems[r1 * dim + c0];
                    }
                    base_c += stride << 1;
                }
            }
            base_r += stride << 1;
        }
        Ok(())
    }

    /// Applies one circuit gate (no noise).
    ///
    /// # Errors
    ///
    /// Propagates qubit-index errors from the underlying operations.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), QsimError> {
        match *gate {
            Gate::H(q) => self.apply_single(q, &gates::h()),
            Gate::X(q) => self.apply_single(q, &gates::x()),
            Gate::Y(q) => self.apply_single(q, &gates::y()),
            Gate::Z(q) => self.apply_single(q, &gates::z()),
            Gate::Rx { qubit, theta } => self.apply_single(qubit, &gates::rx(theta)),
            Gate::Ry { qubit, theta } => self.apply_single(qubit, &gates::ry(theta)),
            Gate::Rz { qubit, theta } => self.apply_single(qubit, &gates::rz(theta)),
            Gate::Cnot { control, target } => self.apply_controlled(control, target, &gates::x()),
            Gate::Cz { a, b } => self.apply_controlled(a, b, &gates::z()),
            Gate::Swap { a, b } => {
                self.apply_controlled(a, b, &gates::x())?;
                self.apply_controlled(b, a, &gates::x())?;
                self.apply_controlled(a, b, &gates::x())
            }
        }
    }

    /// Runs a circuit with per-gate noise injection: after every gate the
    /// configured channel of `noise` hits the gate's qubits.
    ///
    /// # Errors
    ///
    /// * [`QsimError::WidthMismatch`] if the circuit width differs.
    /// * Qubit-index errors from individual gates.
    pub fn run(&mut self, circuit: &Circuit, noise: &NoiseModel) -> Result<(), QsimError> {
        if circuit.n_qubits() != self.n_qubits {
            return Err(QsimError::WidthMismatch {
                circuit: circuit.n_qubits(),
                state: self.n_qubits,
            });
        }
        for gate in circuit.ops() {
            self.apply_gate(gate)?;
            let channel = if gate.is_two_qubit() {
                noise.after_2q.as_ref()
            } else {
                noise.after_1q.as_ref()
            };
            if let Some(ch) = channel {
                for q in gate.qubits() {
                    self.apply_channel(q, ch)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_is_pure() {
        let rho = DensityMatrix::zero_state(3).unwrap();
        assert_eq!(rho.n_qubits(), 3);
        assert_eq!(rho.dim(), 8);
        assert!((rho.trace() - 1.0).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
        assert!((rho.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn plus_state_matches_state_vector() {
        let rho = DensityMatrix::plus_state(2).unwrap();
        for i in 0..4 {
            assert!((rho.probability(i) - 0.25).abs() < EPS);
        }
        assert!((rho.purity() - 1.0).abs() < EPS);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(2).unwrap();
        assert!((rho.trace() - 1.0).abs() < EPS);
        assert!((rho.purity() - 0.25).abs() < EPS);
    }

    #[test]
    fn too_many_qubits_rejected() {
        assert!(matches!(
            DensityMatrix::zero_state(MAX_DM_QUBITS + 1),
            Err(QsimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn noiseless_run_matches_state_vector() {
        // A generic circuit touching every op variant.
        let mut c = Circuit::new(3);
        c.h(0)
            .h(1)
            .h(2)
            .rz(0, 0.7)
            .rx(1, 1.1)
            .ry(2, -0.4)
            .cnot(0, 1)
            .cz(1, 2)
            .x(0)
            .y(1)
            .z(2)
            .swap(0, 2);
        let psi = c.run(StateVector::zero_state(3)).unwrap();
        let mut rho = DensityMatrix::zero_state(3).unwrap();
        rho.run(&c, &NoiseModel::noiseless()).unwrap();
        let expected = DensityMatrix::from_state_vector(&psi).unwrap();
        for r in 0..8 {
            for col in 0..8 {
                assert!(
                    (rho.element(r, col) - expected.element(r, col)).abs() < 1e-10,
                    "mismatch at ({r},{col})"
                );
            }
        }
        assert!((rho.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn apply_diagonal_matches_state_vector() {
        let n = 2;
        let phases: Vec<Complex64> = (0..4).map(|i| Complex64::cis(0.3 * i as f64)).collect();
        let mut psi = StateVector::plus_state(n);
        psi.apply_diagonal(&phases).unwrap();
        let mut rho = DensityMatrix::plus_state(n).unwrap();
        rho.apply_diagonal(&phases).unwrap();
        let expected = DensityMatrix::from_state_vector(&psi).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert!((rho.element(r, c) - expected.element(r, c)).abs() < EPS);
            }
        }
    }

    #[test]
    fn full_depolarizing_yields_maximally_mixed_qubit() {
        let mut rho = DensityMatrix::zero_state(1).unwrap();
        rho.apply_channel(0, &KrausChannel::depolarizing(1.0).unwrap())
            .unwrap();
        // ρ → (1/3)(XρX + YρY + ZρZ) at p=1: |0⟩⟨0| → diag(1/3, 2/3).
        assert!((rho.trace() - 1.0).abs() < EPS);
        assert!((rho.probability(0) - 1.0 / 3.0).abs() < EPS);
        assert!((rho.probability(1) - 2.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::zero_state(1).unwrap();
        rho.apply_single(0, &gates::x()).unwrap(); // |1⟩
        rho.apply_channel(0, &KrausChannel::amplitude_damping(0.3).unwrap())
            .unwrap();
        assert!((rho.probability(0) - 0.3).abs() < EPS);
        assert!((rho.probability(1) - 0.7).abs() < EPS);
        // Full damping returns to |0⟩.
        rho.apply_channel(0, &KrausChannel::amplitude_damping(1.0).unwrap())
            .unwrap();
        assert!((rho.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn phase_damping_kills_coherence_not_populations() {
        let mut rho = DensityMatrix::zero_state(1).unwrap();
        rho.apply_single(0, &gates::h()).unwrap(); // |+⟩
        let before = rho.element(0, 1).abs();
        rho.apply_channel(0, &KrausChannel::phase_damping(0.5).unwrap())
            .unwrap();
        let after = rho.element(0, 1).abs();
        assert!(after < before);
        assert!((rho.probability(0) - 0.5).abs() < EPS);
        assert!((rho.probability(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn channels_preserve_trace_and_hermiticity() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.3).rx(0, 0.9);
        let nm = NoiseModel::uniform_depolarizing(0.01, 0.05).unwrap();
        let mut rho = DensityMatrix::zero_state(2).unwrap();
        rho.run(&c, &nm).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.hermiticity_deviation() < 1e-10);
        assert!(rho.purity() < 1.0);
        assert!(rho.purity() >= 0.25 - EPS);
    }

    #[test]
    fn noise_strictly_decreases_purity_with_rate() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let mut last = 1.1;
        for p in [0.0, 0.02, 0.1, 0.3] {
            let nm = NoiseModel::uniform_depolarizing(p, p).unwrap();
            let mut rho = DensityMatrix::zero_state(2).unwrap();
            rho.run(&c, &nm).unwrap();
            assert!(rho.purity() < last, "p={p}");
            last = rho.purity();
        }
    }

    #[test]
    fn expectation_diagonal_limits() {
        // ZZ observable on a Bell state: ⟨ZZ⟩ = 1.
        let obs = DiagonalObservable::from_fn(2, |i| {
            let parity = (i.count_ones() % 2) as f64;
            1.0 - 2.0 * parity
        });
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let mut rho = DensityMatrix::zero_state(2).unwrap();
        rho.run(&c, &NoiseModel::noiseless()).unwrap();
        assert!((rho.expectation_diagonal(&obs).unwrap() - 1.0).abs() < EPS);
        // Maximally mixed: ⟨ZZ⟩ = 0.
        let mixed = DensityMatrix::maximally_mixed(2).unwrap();
        assert!(mixed.expectation_diagonal(&obs).unwrap().abs() < EPS);
        // Dimension mismatch.
        let bad = DiagonalObservable::from_fn(3, |_| 1.0);
        assert!(matches!(
            mixed.expectation_diagonal(&bad),
            Err(QsimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn width_and_index_errors() {
        let mut rho = DensityMatrix::zero_state(2).unwrap();
        let c3 = Circuit::new(3);
        assert!(matches!(
            rho.run(&c3, &NoiseModel::noiseless()),
            Err(QsimError::WidthMismatch { .. })
        ));
        assert!(matches!(
            rho.apply_single(5, &gates::x()),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            rho.apply_controlled(0, 0, &gates::x()),
            Err(QsimError::DuplicateQubit { .. })
        ));
        assert!(matches!(
            rho.apply_diagonal(&[Complex64::ONE; 3]),
            Err(QsimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn swap_decomposition_correct() {
        // |01⟩ → |10⟩ under SWAP (qubit 0 is the low bit).
        let mut rho = DensityMatrix::zero_state(2).unwrap();
        rho.apply_single(0, &gates::x()).unwrap(); // index 1 = |q1=0,q0=1⟩
        rho.apply_gate(&Gate::Swap { a: 0, b: 1 }).unwrap();
        assert!((rho.probability(2) - 1.0).abs() < EPS);
    }
}
