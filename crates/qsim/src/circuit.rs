use crate::{gates, QsimError, StateVector};

/// One gate application in a [`Circuit`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Hadamard on a qubit.
    H(usize),
    /// Pauli-X on a qubit.
    X(usize),
    /// Pauli-Y on a qubit.
    Y(usize),
    /// Pauli-Z on a qubit.
    Z(usize),
    /// `RX(θ)` rotation.
    Rx {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ.
        theta: f64,
    },
    /// `RY(θ)` rotation.
    Ry {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ.
        theta: f64,
    },
    /// `RZ(θ)` rotation.
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle θ.
        theta: f64,
    },
    /// Controlled-NOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z (symmetric in its qubits).
    Cz {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// SWAP, decomposed into three CNOTs at run time.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
}

impl Gate {
    /// Qubits this gate touches (one or two entries).
    #[must_use]
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Y(q) | Gate::Z(q) => vec![q],
            Gate::Rx { qubit, .. } | Gate::Ry { qubit, .. } | Gate::Rz { qubit, .. } => {
                vec![qubit]
            }
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Cz { a, b } | Gate::Swap { a, b } => vec![a, b],
        }
    }

    /// `true` for two-qubit gates.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().len() == 2
    }
}

/// A replayable sequence of gates on a fixed-width register.
///
/// Built with chainable methods and executed with [`Circuit::run`] (or
/// [`Circuit::apply`] to reuse an existing state). This is the gate-level
/// execution path; the QAOA core also has a fast diagonal path, and the two
/// are cross-validated in the `qaoa` crate's tests.
///
/// # Example
///
/// ```
/// use qsim::{Circuit, StateVector};
/// # fn main() -> Result<(), qsim::QsimError> {
/// // GHZ state on three qubits.
/// let mut c = Circuit::new(3);
/// c.h(0).cnot(0, 1).cnot(1, 2);
/// let psi = c.run(StateVector::zero_state(3))?;
/// assert!((psi.probability(0b000) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b111) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits`.
    #[must_use]
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Register width the circuit was built for.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of gate operations recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no gates have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Borrows the recorded operations.
    #[must_use]
    pub fn ops(&self) -> &[Gate] {
        &self.ops
    }

    /// Number of two-qubit gates (a common NISQ cost metric).
    #[must_use]
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Appends an arbitrary [`Gate`].
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        self.ops.push(gate);
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, qubit: usize) -> &mut Self {
        self.push(Gate::H(qubit))
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, qubit: usize) -> &mut Self {
        self.push(Gate::X(qubit))
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, qubit: usize) -> &mut Self {
        self.push(Gate::Y(qubit))
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, qubit: usize) -> &mut Self {
        self.push(Gate::Z(qubit))
    }

    /// Appends `RX(θ)`.
    pub fn rx(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx { qubit, theta })
    }

    /// Appends `RY(θ)`.
    pub fn ry(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry { qubit, theta })
    }

    /// Appends `RZ(θ)`.
    pub fn rz(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz { qubit, theta })
    }

    /// Appends a CNOT.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cnot { control, target })
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz { a, b })
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap { a, b })
    }

    /// Applies every recorded gate to `state` in order.
    ///
    /// # Errors
    ///
    /// * [`QsimError::WidthMismatch`] if the state width differs from the
    ///   circuit width.
    /// * Any gate-level error ([`QsimError::QubitOutOfRange`],
    ///   [`QsimError::DuplicateQubit`]); the state is left partially evolved
    ///   in that case, so prefer validating circuits once with
    ///   [`Circuit::validate`] when reusing them.
    pub fn apply(&self, state: &mut StateVector) -> Result<(), QsimError> {
        if state.n_qubits() != self.n_qubits {
            return Err(QsimError::WidthMismatch {
                circuit: self.n_qubits,
                state: state.n_qubits(),
            });
        }
        for op in &self.ops {
            match *op {
                Gate::H(q) => state.apply_single(q, &gates::h())?,
                Gate::X(q) => state.apply_single(q, &gates::x())?,
                Gate::Y(q) => state.apply_single(q, &gates::y())?,
                Gate::Z(q) => state.apply_single(q, &gates::z())?,
                Gate::Rx { qubit, theta } => state.apply_single(qubit, &gates::rx(theta))?,
                Gate::Ry { qubit, theta } => state.apply_single(qubit, &gates::ry(theta))?,
                Gate::Rz { qubit, theta } => state.apply_single(qubit, &gates::rz(theta))?,
                Gate::Cnot { control, target } => {
                    state.apply_controlled(control, target, &gates::x())?;
                }
                Gate::Cz { a, b } => state.apply_controlled(a, b, &gates::z())?,
                Gate::Swap { a, b } => {
                    state.apply_controlled(a, b, &gates::x())?;
                    state.apply_controlled(b, a, &gates::x())?;
                    state.apply_controlled(a, b, &gates::x())?;
                }
            }
        }
        Ok(())
    }

    /// Consumes `state`, applies the circuit and returns the evolved state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::apply`].
    pub fn run(&self, mut state: StateVector) -> Result<StateVector, QsimError> {
        self.apply(&mut state)?;
        Ok(state)
    }

    /// The inverse circuit: reversed gate order with each rotation negated
    /// (H, X, Y, Z, CNOT, CZ and SWAP are self-inverse).
    ///
    /// Running a circuit followed by its inverse restores the input state.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for op in self.ops.iter().rev() {
            let gate = match *op {
                Gate::Rx { qubit, theta } => Gate::Rx {
                    qubit,
                    theta: -theta,
                },
                Gate::Ry { qubit, theta } => Gate::Ry {
                    qubit,
                    theta: -theta,
                },
                Gate::Rz { qubit, theta } => Gate::Rz {
                    qubit,
                    theta: -theta,
                },
                ref other => other.clone(),
            };
            inv.ops.push(gate);
        }
        inv
    }

    /// Checks that every recorded gate addresses valid, distinct qubits.
    ///
    /// # Errors
    ///
    /// The first [`QsimError::QubitOutOfRange`] or
    /// [`QsimError::DuplicateQubit`] found, if any.
    pub fn validate(&self) -> Result<(), QsimError> {
        for op in &self.ops {
            let qs = op.qubits();
            for &q in &qs {
                if q >= self.n_qubits {
                    return Err(QsimError::QubitOutOfRange {
                        qubit: q,
                        n_qubits: self.n_qubits,
                    });
                }
            }
            if qs.len() == 2 && qs[0] == qs[1] {
                return Err(QsimError::DuplicateQubit { qubit: qs[0] });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn builder_records_ops() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.5);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.ops()[0], Gate::H(0));
        assert_eq!(c.n_qubits(), 2);
    }

    #[test]
    fn width_mismatch_rejected() {
        let c = Circuit::new(2);
        assert!(matches!(
            c.run(StateVector::zero_state(3)),
            Err(QsimError::WidthMismatch {
                circuit: 2,
                state: 3
            })
        ));
    }

    #[test]
    fn validate_catches_bad_gates() {
        let mut c = Circuit::new(2);
        c.h(5);
        assert!(matches!(
            c.validate(),
            Err(QsimError::QubitOutOfRange { qubit: 5, .. })
        ));
        let mut c2 = Circuit::new(2);
        c2.cnot(1, 1);
        assert!(matches!(
            c2.validate(),
            Err(QsimError::DuplicateQubit { qubit: 1 })
        ));
        let mut ok = Circuit::new(2);
        ok.h(0).cz(0, 1);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn swap_swaps_basis_states() {
        let mut c = Circuit::new(2);
        c.x(0).swap(0, 1);
        let s = c.run(StateVector::zero_state(2)).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn cz_symmetry() {
        // CZ(a,b) == CZ(b,a) on an arbitrary product state.
        let mut prep = Circuit::new(2);
        prep.h(0).ry(1, 0.7);
        let base = prep.run(StateVector::zero_state(2)).unwrap();
        let mut c1 = Circuit::new(2);
        c1.cz(0, 1);
        let mut c2 = Circuit::new(2);
        c2.cz(1, 0);
        let s1 = c1.run(base.clone()).unwrap();
        let s2 = c2.run(base).unwrap();
        assert!((s1.fidelity(&s2).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn circuit_preserves_norm() {
        let mut c = Circuit::new(3);
        c.h(0)
            .h(1)
            .h(2)
            .cnot(0, 1)
            .rz(1, 0.9)
            .cnot(0, 1)
            .rx(2, 1.3)
            .cz(1, 2)
            .swap(0, 2)
            .y(1)
            .z(0);
        let s = c.run(StateVector::zero_state(3)).unwrap();
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .rx(1, 0.7)
            .cnot(0, 2)
            .rz(2, -1.3)
            .cz(1, 2)
            .swap(0, 1)
            .ry(0, 2.2);
        let forward = c.run(StateVector::zero_state(3)).unwrap();
        let restored = c.inverse().run(forward).unwrap();
        assert!((restored.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn zz_interaction_decomposition() {
        // CNOT(a,b) RZ(b,θ) CNOT(a,b) == exp(-iθ Z_a Z_b / 2) up to phase:
        // check on |++⟩ that probabilities match the analytic form.
        let theta = 0.8;
        let mut c = Circuit::new(2);
        c.h(0).h(1).cnot(0, 1).rz(1, theta).cnot(0, 1);
        let s = c.run(StateVector::zero_state(2)).unwrap();
        // ZZ phase on |++> leaves uniform probabilities.
        for i in 0..4 {
            assert!((s.probability(i) - 0.25).abs() < EPS);
        }
    }
}
