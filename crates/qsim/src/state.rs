use crate::{Complex64, QsimError};

/// Maximum register width this simulator will allocate (`2^28` amplitudes,
/// 4 GiB of `Complex64`). The paper's instances are 8-qubit, but the
/// committed bench sweep and corpus/scaling runs operate up to n = 20
/// (16 MiB of amplitudes); the cap just bounds accidental allocation blowups
/// well above the real operating range.
pub const MAX_QUBITS: usize = 28;

/// A pure quantum state of `n` qubits stored as `2^n` complex amplitudes.
///
/// Qubit `k` owns bit `k` of the basis index (little-endian). All gate
/// kernels are in-place and `O(2^n)`.
///
/// # Example
///
/// ```
/// use qsim::{gates, StateVector};
/// # fn main() -> Result<(), qsim::QsimError> {
/// let mut psi = StateVector::zero_state(1);
/// psi.apply_single(0, &gates::h())?;
/// assert!((psi.probability(0) - 0.5).abs() < 1e-12);
/// assert!((psi.norm() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > MAX_QUBITS`; use [`StateVector::try_zero_state`]
    /// for a fallible constructor.
    #[must_use]
    pub fn zero_state(n_qubits: usize) -> Self {
        // lint:allow(no-panic-lib) documented panic on a convenience constructor; try_zero_state is the fallible route
        Self::try_zero_state(n_qubits).expect("register too wide")
    }

    /// Fallible version of [`StateVector::zero_state`].
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::TooManyQubits`] if the register would exceed
    /// [`MAX_QUBITS`].
    pub fn try_zero_state(n_qubits: usize) -> Result<Self, QsimError> {
        if n_qubits > MAX_QUBITS {
            return Err(QsimError::TooManyQubits { n_qubits });
        }
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        Ok(Self { n_qubits, amps })
    }

    /// Creates the uniform superposition `H^{⊗n}|0…0⟩` — the QAOA input
    /// state — directly, without applying `n` Hadamard gates.
    #[must_use]
    pub fn plus_state(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        // lint:allow(no-lossy-as) dim <= 2^MAX_QUBITS < 2^53 is exactly representable in f64
        let amp = Complex64::new(1.0 / (dim as f64).sqrt(), 0.0);
        Self {
            n_qubits,
            amps: vec![amp; dim],
        }
    }

    /// Resets this state to the uniform superposition `|+…+⟩` **in place**,
    /// reusing the existing amplitude buffer. This is the allocation-free
    /// entry point of the QAOA evaluation hot path (see `qaoa::EvalContext`):
    /// byte-for-byte equivalent to a fresh [`StateVector::plus_state`] of the
    /// same width.
    pub fn reset_to_plus(&mut self) {
        // lint:allow(no-lossy-as) dim <= 2^MAX_QUBITS < 2^53 is exactly representable in f64
        let amp = Complex64::new(1.0 / (self.dim() as f64).sqrt(), 0.0);
        self.amps.fill(amp);
    }

    /// Creates a basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n_qubits` or the register is too wide; use
    /// [`StateVector::try_basis_state`] for a fallible constructor.
    #[must_use]
    pub fn basis_state(n_qubits: usize, index: usize) -> Self {
        // lint:allow(no-panic-lib) documented panic on a convenience constructor; try_basis_state is the fallible route
        Self::try_basis_state(n_qubits, index).expect("basis index out of range")
    }

    /// Fallible version of [`StateVector::basis_state`].
    ///
    /// # Errors
    ///
    /// * [`QsimError::TooManyQubits`] if the register would exceed
    ///   [`MAX_QUBITS`].
    /// * [`QsimError::BasisIndexOutOfRange`] if `index >= 2^n_qubits`.
    pub fn try_basis_state(n_qubits: usize, index: usize) -> Result<Self, QsimError> {
        let mut s = Self::try_zero_state(n_qubits)?;
        if index >= s.dim() {
            return Err(QsimError::BasisIndexOutOfRange {
                index,
                dim: s.dim(),
            });
        }
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        Ok(s)
    }

    /// Builds a state from raw amplitudes (length must be a power of two).
    ///
    /// The caller is responsible for normalization; use
    /// [`StateVector::normalize`] if needed.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the length is not a power
    /// of two (or zero).
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Result<Self, QsimError> {
        let dim = amps.len();
        if dim == 0 || !dim.is_power_of_two() {
            return Err(QsimError::DimensionMismatch {
                expected: dim.next_power_of_two().max(1),
                actual: dim,
            });
        }
        Ok(Self {
            // lint:allow(no-lossy-as) trailing_zeros of a usize is at most 64, always in range
            n_qubits: dim.trailing_zeros() as usize,
            amps,
        })
    }

    /// Number of qubits.
    #[must_use]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Dimension `2^n` of the Hilbert space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Borrows the amplitudes.
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutably borrows the amplitudes (used by diagonal fast paths).
    #[must_use]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// `|⟨index|ψ⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim()`.
    #[must_use]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The full probability distribution over basis states.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The 2-norm of the state (1 for a physical state).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales to unit norm. No-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if widths differ.
    pub fn inner(&self, other: &StateVector) -> Result<Complex64, QsimError> {
        if self.dim() != other.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|⟨self|other⟩|²`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if widths differ.
    pub fn fidelity(&self, other: &StateVector) -> Result<f64, QsimError> {
        Ok(self.inner(other)?.norm_sqr())
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), QsimError> {
        if qubit >= self.n_qubits {
            Err(QsimError::QubitOutOfRange {
                qubit,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit unitary `u` (row-major `[[u00,u01],[u10,u11]]`)
    /// to `qubit`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad qubit index.
    pub fn apply_single(&mut self, qubit: usize, u: &[[Complex64; 2]; 2]) -> Result<(), QsimError> {
        self.check_qubit(qubit)?;
        let stride = 1usize << qubit;
        let dim = self.dim();
        let mut base = 0;
        while base < dim {
            for offset in base..base + stride {
                let i0 = offset;
                let i1 = offset + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = u[0][0] * a0 + u[0][1] * a1;
                self.amps[i1] = u[1][0] * a0 + u[1][1] * a1;
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Applies a unitary to `target`, controlled on `control` being `|1⟩`.
    ///
    /// # Errors
    ///
    /// * [`QsimError::QubitOutOfRange`] for a bad index.
    /// * [`QsimError::DuplicateQubit`] if `control == target`.
    pub fn apply_controlled(
        &mut self,
        control: usize,
        target: usize,
        u: &[[Complex64; 2]; 2],
    ) -> Result<(), QsimError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(QsimError::DuplicateQubit { qubit: control });
        }
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for i in 0..self.dim() {
            // Visit each target pair once, only when the control bit is set.
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = u[0][0] * a0 + u[0][1] * a1;
                self.amps[j] = u[1][0] * a0 + u[1][1] * a1;
            }
        }
        Ok(())
    }

    /// Multiplies amplitude `i` by `phases[i]` — the fast path for diagonal
    /// unitaries such as the QAOA phase-separation layer `e^{-iγ H_C}`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if `phases.len() != dim()`.
    pub fn apply_diagonal(&mut self, phases: &[Complex64]) -> Result<(), QsimError> {
        if phases.len() != self.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                actual: phases.len(),
            });
        }
        for (a, p) in self.amps.iter_mut().zip(phases) {
            *a *= *p;
        }
        Ok(())
    }

    /// Applies the diagonal unitary `e^{−iγ·diag}` **fused**: amplitude `i`
    /// is multiplied by `cis(−gamma · diag[i])` directly, without
    /// materializing a `2^n` phase vector first. This is the QAOA
    /// phase-separation layer computed straight from the cut-value table.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if `diag.len() != dim()`.
    pub fn apply_phase_from_diag(&mut self, diag: &[f64], gamma: f64) -> Result<(), QsimError> {
        if diag.len() != self.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                actual: diag.len(),
            });
        }
        for (a, &c) in self.amps.iter_mut().zip(diag) {
            *a *= Complex64::cis(-gamma * c);
        }
        Ok(())
    }

    /// Applies a diagonal unitary given as a small table of **distinct**
    /// phases plus a per-amplitude index into it: amplitude `i` is
    /// multiplied by `table[level_of[i]]`.
    ///
    /// Diagonal cost Hamiltonians take few distinct values (a MaxCut
    /// diagonal has at most `|E| + 1` levels on an unweighted graph), so
    /// precomputing `table[l] = cis(−γ · level_l)` turns the `2^n`
    /// trigonometric evaluations of [`StateVector::apply_phase_from_diag`]
    /// into `O(levels)` — the dominant saving of the evaluation hot path.
    /// See [`DiagonalObservable::levels`](crate::DiagonalObservable::levels).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if `level_of.len() != dim()`.
    ///
    /// # Panics
    ///
    /// Panics if an index in `level_of` is out of `table`'s range.
    pub fn apply_phase_levels(
        &mut self,
        level_of: &[u32],
        table: &[Complex64],
    ) -> Result<(), QsimError> {
        if level_of.len() != self.dim() {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                actual: level_of.len(),
            });
        }
        for (a, &l) in self.amps.iter_mut().zip(level_of) {
            // lint:allow(no-lossy-as) u32 -> usize is value-preserving on every supported target
            *a *= table[l as usize];
        }
        Ok(())
    }

    /// Applies `RX(θ)` to **every** qubit — the QAOA mixing layer — with a
    /// kernel specialized to the RX structure
    /// `[[cos, −i·sin], [−i·sin, cos]]` (half the multiplies of the generic
    /// [`StateVector::apply_single`] path, no gate-matrix indirection).
    pub fn apply_rx_layer(&mut self, theta: f64) {
        let (s, co) = (theta / 2.0).sin_cos();
        let dim = self.dim();
        for qubit in 0..self.n_qubits {
            let stride = 1usize << qubit;
            let mut base = 0;
            while base < dim {
                for offset in base..base + stride {
                    let i0 = offset;
                    let i1 = offset + stride;
                    let a0 = self.amps[i0];
                    let a1 = self.amps[i1];
                    // c·a0 − i·s·a1 and c·a1 − i·s·a0, expanded.
                    self.amps[i0] = Complex64::new(co * a0.re + s * a1.im, co * a0.im - s * a1.re);
                    self.amps[i1] = Complex64::new(co * a1.re + s * a0.im, co * a1.im - s * a0.re);
                }
                base += stride << 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state_shape() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.n_qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.amplitude(0), Complex64::ONE);
        assert!((s.norm() - 1.0).abs() < EPS);
        assert!(StateVector::try_zero_state(64).is_err());
    }

    #[test]
    fn plus_state_is_uniform() {
        let s = StateVector::plus_state(4);
        for i in 0..16 {
            assert!((s.probability(i) - 1.0 / 16.0).abs() < EPS);
        }
        // Agreement with explicit Hadamards.
        let mut h = StateVector::zero_state(4);
        for q in 0..4 {
            h.apply_single(q, &gates::h()).unwrap();
        }
        assert!((s.fidelity(&h).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn basis_state_and_from_amplitudes() {
        let s = StateVector::basis_state(2, 3);
        assert_eq!(s.probability(3), 1.0);
        assert!(matches!(
            StateVector::try_basis_state(2, 4),
            Err(QsimError::BasisIndexOutOfRange { index: 4, dim: 4 })
        ));
        assert!(StateVector::try_basis_state(64, 0).is_err());
        assert!(StateVector::from_amplitudes(vec![Complex64::ONE; 3]).is_err());
        assert!(StateVector::from_amplitudes(vec![]).is_err());
        let ok = StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ZERO]).unwrap();
        assert_eq!(ok.n_qubits(), 1);
    }

    #[test]
    fn x_flips_correct_bit() {
        let mut s = StateVector::zero_state(3);
        s.apply_single(1, &gates::x()).unwrap();
        assert!((s.probability(0b010) - 1.0).abs() < EPS);
    }

    #[test]
    fn gate_out_of_range() {
        let mut s = StateVector::zero_state(2);
        assert!(matches!(
            s.apply_single(2, &gates::x()),
            Err(QsimError::QubitOutOfRange { qubit: 2, .. })
        ));
        assert!(matches!(
            s.apply_controlled(0, 0, &gates::x()),
            Err(QsimError::DuplicateQubit { qubit: 0 })
        ));
    }

    #[test]
    fn cnot_entangles() {
        let mut s = StateVector::zero_state(2);
        s.apply_single(0, &gates::h()).unwrap();
        s.apply_controlled(0, 1, &gates::x()).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn controlled_gate_ignores_control_zero() {
        let mut s = StateVector::zero_state(2);
        s.apply_controlled(0, 1, &gates::x()).unwrap();
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn diagonal_phase_preserves_probabilities() {
        let mut s = StateVector::plus_state(2);
        let phases: Vec<Complex64> = (0..4).map(|i| Complex64::cis(0.3 * i as f64)).collect();
        let before = s.probabilities();
        s.apply_diagonal(&phases).unwrap();
        let after = s.probabilities();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < EPS);
        }
        assert!(s.apply_diagonal(&phases[..2]).is_err());
    }

    #[test]
    fn reset_to_plus_matches_fresh_plus_state() {
        let mut s = StateVector::zero_state(4);
        s.apply_single(2, &gates::x()).unwrap();
        s.apply_single(0, &gates::h()).unwrap();
        s.reset_to_plus();
        let fresh = StateVector::plus_state(4);
        // Bit-for-bit equality, not just closeness: the hot path relies on
        // buffer reuse being indistinguishable from fresh allocation.
        assert_eq!(s, fresh);
    }

    #[test]
    fn fused_phase_matches_materialized_diagonal() {
        let diag: Vec<f64> = (0..8).map(|z| (z % 3) as f64 * 1.5).collect();
        let gamma = 0.7;
        let mut fused = StateVector::plus_state(3);
        fused.apply_phase_from_diag(&diag, gamma).unwrap();
        let phases: Vec<Complex64> = diag.iter().map(|&c| Complex64::cis(-gamma * c)).collect();
        let mut materialized = StateVector::plus_state(3);
        materialized.apply_diagonal(&phases).unwrap();
        assert_eq!(fused, materialized);
        assert!(fused.apply_phase_from_diag(&diag[..4], gamma).is_err());
    }

    #[test]
    fn leveled_phase_matches_fused_phase() {
        // diag takes 3 distinct values; the leveled path must agree exactly.
        let diag: Vec<f64> = (0..8).map(|z| (z % 3) as f64 * 1.5).collect();
        let gamma = 1.1;
        let level_of: Vec<u32> = (0..8).map(|z| (z % 3) as u32).collect();
        let table: Vec<Complex64> = (0..3)
            .map(|l| Complex64::cis(-gamma * l as f64 * 1.5))
            .collect();
        let mut leveled = StateVector::plus_state(3);
        leveled.apply_phase_levels(&level_of, &table).unwrap();
        let mut fused = StateVector::plus_state(3);
        fused.apply_phase_from_diag(&diag, gamma).unwrap();
        assert_eq!(leveled, fused);
        assert!(leveled.apply_phase_levels(&level_of[..4], &table).is_err());
    }

    #[test]
    fn rx_layer_matches_per_qubit_gates() {
        let theta = 0.83;
        let rx = gates::rx(theta);
        // Start from a non-trivial state so every matrix entry matters.
        let mut reference = StateVector::plus_state(4);
        reference
            .apply_phase_from_diag(&(0..16).map(|z| z as f64).collect::<Vec<_>>(), 0.3)
            .unwrap();
        let mut layered = reference.clone();
        for q in 0..4 {
            reference.apply_single(q, &rx).unwrap();
        }
        layered.apply_rx_layer(theta);
        for (a, b) in reference.amplitudes().iter().zip(layered.amplitudes()) {
            assert!((a.re - b.re).abs() < 1e-15 && (a.im - b.im).abs() < 1e-15);
        }
        assert!((layered.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn rx_layer_is_exactly_invertible() {
        // The adjoint gradient's backward pass relies on RX(−θ) undoing
        // RX(θ) to machine precision.
        let mut s = StateVector::plus_state(3);
        s.apply_phase_from_diag(&(0..8).map(|z| z as f64).collect::<Vec<_>>(), 0.9)
            .unwrap();
        let before = s.clone();
        s.apply_rx_layer(0.37);
        s.apply_rx_layer(-0.37);
        for (a, b) in s.amplitudes().iter().zip(before.amplitudes()) {
            assert!((a.re - b.re).abs() < 1e-15 && (a.im - b.im).abs() < 1e-15);
        }
    }

    #[test]
    fn normalize_rescales() {
        let mut s =
            StateVector::from_amplitudes(vec![Complex64::new(3.0, 0.0), Complex64::new(4.0, 0.0)])
                .unwrap();
        s.normalize();
        assert!((s.norm() - 1.0).abs() < EPS);
        assert!((s.probability(0) - 0.36).abs() < EPS);
        let mut z = StateVector::from_amplitudes(vec![Complex64::ZERO, Complex64::ZERO]).unwrap();
        z.normalize(); // must not divide by zero
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn inner_product_orthogonality() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 1);
        assert_eq!(a.inner(&b).unwrap(), Complex64::ZERO);
        assert_eq!(a.inner(&a).unwrap(), Complex64::ONE);
        assert!(a.inner(&StateVector::zero_state(3)).is_err());
        assert_eq!(a.fidelity(&b).unwrap(), 0.0);
    }

    #[test]
    fn rz_adds_relative_phase_only() {
        let mut s = StateVector::plus_state(1);
        s.apply_single(0, &gates::rz(1.0)).unwrap();
        // Probabilities unchanged; relative phase is e^{i}.
        assert!((s.probability(0) - 0.5).abs() < EPS);
        let rel = s.amplitude(1) / s.amplitude(0);
        assert!((rel.arg() - 1.0).abs() < EPS);
    }
}
