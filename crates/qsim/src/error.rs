use std::error::Error;
use std::fmt;

/// Error type for simulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QsimError {
    /// A gate referenced a qubit index `>= n_qubits`.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Number of qubits in the register.
        n_qubits: usize,
    },
    /// A two-qubit gate was given the same qubit twice.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A circuit built for one register width was run on another.
    WidthMismatch {
        /// Width the circuit was built for.
        circuit: usize,
        /// Width of the state it was applied to.
        state: usize,
    },
    /// An observable's dimension does not match the state dimension.
    DimensionMismatch {
        /// Dimension expected by the observable.
        expected: usize,
        /// Dimension of the state.
        actual: usize,
    },
    /// Requested register is too wide to allocate (`2^n` amplitudes).
    TooManyQubits {
        /// The requested qubit count.
        n_qubits: usize,
    },
    /// A computational-basis index was `>= 2^n_qubits`.
    BasisIndexOutOfRange {
        /// The offending basis-state index.
        index: usize,
        /// Dimension `2^n` of the register.
        dim: usize,
    },
    /// A quantum channel failed validation (probability outside `[0, 1]`,
    /// Kraus set not trace-preserving, empty operator list, …).
    InvalidChannel {
        /// Description of the violated requirement.
        reason: &'static str,
    },
    /// A probability vector was unusable for sampling (empty, containing a
    /// non-finite entry, or summing to zero).
    InvalidProbabilities {
        /// Description of the violated requirement.
        reason: &'static str,
    },
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsimError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            QsimError::DuplicateQubit { qubit } => {
                write!(f, "two-qubit gate applied twice to qubit {qubit}")
            }
            QsimError::WidthMismatch { circuit, state } => write!(
                f,
                "circuit built for {circuit} qubits applied to {state}-qubit state"
            ),
            QsimError::DimensionMismatch { expected, actual } => write!(
                f,
                "observable dimension {expected} does not match state dimension {actual}"
            ),
            QsimError::TooManyQubits { n_qubits } => {
                write!(f, "{n_qubits} qubits exceeds the supported register width")
            }
            QsimError::BasisIndexOutOfRange { index, dim } => {
                write!(f, "basis index {index} out of range for dimension {dim}")
            }
            QsimError::InvalidChannel { reason } => {
                write!(f, "invalid quantum channel: {reason}")
            }
            QsimError::InvalidProbabilities { reason } => {
                write!(f, "invalid probability vector: {reason}")
            }
        }
    }
}

impl Error for QsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            QsimError::QubitOutOfRange {
                qubit: 5,
                n_qubits: 3
            }
            .to_string(),
            "qubit 5 out of range for 3-qubit register"
        );
        assert!(QsimError::DuplicateQubit { qubit: 1 }
            .to_string()
            .contains("qubit 1"));
        assert!(QsimError::WidthMismatch {
            circuit: 2,
            state: 3
        }
        .to_string()
        .contains("2 qubits"));
        assert!(QsimError::DimensionMismatch {
            expected: 4,
            actual: 8
        }
        .to_string()
        .contains('8'));
        assert!(QsimError::TooManyQubits { n_qubits: 64 }
            .to_string()
            .contains("64"));
        assert!(QsimError::BasisIndexOutOfRange { index: 9, dim: 8 }
            .to_string()
            .contains("basis index 9"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QsimError>();
    }
}
