//! General two-qubit unitaries and higher-level gate utilities.
//!
//! The QAOA pipeline only needs CNOT/CZ, but a usable simulator crate also
//! exposes arbitrary 4×4 unitaries (for custom interactions and tests) and
//! the `U3` parametrization that any single-qubit unitary decomposes into.

use crate::gates::Gate2;
use crate::{Complex64, QsimError, StateVector};

/// A 4×4 complex matrix in row-major order, acting on qubit pair `(a, b)`
/// with basis ordering `|b a⟩ = |00⟩, |01⟩, |10⟩, |11⟩` (bit of `a` is the
/// least-significant index bit).
pub type Gate4 = [[Complex64; 4]; 4];

/// The 4×4 identity.
#[must_use]
pub fn identity4() -> Gate4 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = Complex64::ONE;
    }
    m
}

/// Kronecker product `u ⊗ v` (with `v` on the low qubit).
#[must_use]
pub fn kron(u: &Gate2, v: &Gate2) -> Gate4 {
    let mut out = [[Complex64::ZERO; 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    out[2 * i + k][2 * j + l] = u[i][j] * v[k][l];
                }
            }
        }
    }
    out
}

/// The CNOT matrix with control on the low index bit.
#[must_use]
pub fn cnot4() -> Gate4 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    // |b a⟩: control a (low bit), target b (high bit).
    m[0][0] = Complex64::ONE; // |00⟩ -> |00⟩
    m[3][1] = Complex64::ONE; // |01⟩ -> |11⟩
    m[2][2] = Complex64::ONE; // |10⟩ -> |10⟩
    m[1][3] = Complex64::ONE; // |11⟩ -> |01⟩
    m
}

/// `exp(−iθ Z⊗Z / 2)` — the MaxCut edge interaction as one native gate.
#[must_use]
pub fn rzz(theta: f64) -> Gate4 {
    let mut m = [[Complex64::ZERO; 4]; 4];
    let minus = Complex64::cis(-theta / 2.0);
    let plus = Complex64::cis(theta / 2.0);
    m[0][0] = minus; // |00⟩: ZZ = +1
    m[1][1] = plus; //  |01⟩: ZZ = −1
    m[2][2] = plus; //  |10⟩: ZZ = −1
    m[3][3] = minus; // |11⟩: ZZ = +1
    m
}

/// Largest entry-wise deviation between two 4×4 gates.
#[must_use]
pub fn max_deviation4(a: &Gate4, b: &Gate4) -> f64 {
    let mut worst = 0.0_f64;
    for i in 0..4 {
        for j in 0..4 {
            worst = worst.max((a[i][j] - b[i][j]).abs());
        }
    }
    worst
}

/// `true` if `u` is unitary to within `tol`.
#[must_use]
pub fn is_unitary4(u: &Gate4, tol: f64) -> bool {
    let mut prod = [[Complex64::ZERO; 4]; 4];
    for (i, row) in prod.iter_mut().enumerate() {
        for (j, entry) in row.iter_mut().enumerate() {
            for urow in u {
                *entry += urow[i].conj() * urow[j];
            }
        }
    }
    max_deviation4(&prod, &identity4()) <= tol
}

impl StateVector {
    /// Applies an arbitrary two-qubit unitary to qubits `(a, b)`, where bit
    /// `a` is the low index bit of the 4×4 matrix basis.
    ///
    /// # Errors
    ///
    /// * [`QsimError::QubitOutOfRange`] for bad indices.
    /// * [`QsimError::DuplicateQubit`] if `a == b`.
    pub fn apply_two_qubit(&mut self, a: usize, b: usize, u: &Gate4) -> Result<(), QsimError> {
        for q in [a, b] {
            if q >= self.n_qubits() {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits(),
                });
            }
        }
        if a == b {
            return Err(QsimError::DuplicateQubit { qubit: a });
        }
        let ma = 1usize << a;
        let mb = 1usize << b;
        let amps = self.amplitudes_mut();
        for i in 0..amps.len() {
            // Visit each 4-amplitude block once, from its |00⟩ member.
            if i & ma == 0 && i & mb == 0 {
                let idx = [i, i | ma, i | mb, i | ma | mb];
                let old = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                for (r, &target) in idx.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (c, &o) in old.iter().enumerate() {
                        acc += u[r][c] * o;
                    }
                    amps[target] = acc;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const EPS: f64 = 1e-12;

    #[test]
    fn builtin_gates_unitary() {
        assert!(is_unitary4(&identity4(), EPS));
        assert!(is_unitary4(&cnot4(), EPS));
        assert!(is_unitary4(&rzz(0.731), EPS));
        assert!(is_unitary4(&kron(&gates::h(), &gates::rx(0.4)), EPS));
    }

    #[test]
    fn cnot4_matches_controlled_kernel() {
        // Dense CNOT vs the dedicated controlled-gate kernel, on a random
        // product state.
        let mut prep = crate::Circuit::new(3);
        prep.ry(0, 0.7).ry(1, -0.4).ry(2, 1.1);
        let base = prep.run(StateVector::zero_state(3)).unwrap();
        let mut dense = base.clone();
        dense.apply_two_qubit(0, 1, &cnot4()).unwrap();
        let mut kernel = base;
        kernel.apply_controlled(0, 1, &gates::x()).unwrap();
        assert!((dense.fidelity(&kernel).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn kron_matches_sequential_single_gates() {
        let u = gates::rx(0.9);
        let v = gates::rz(1.3);
        let mut prep = crate::Circuit::new(2);
        prep.h(0).h(1);
        let base = prep.run(StateVector::zero_state(2)).unwrap();
        let mut dense = base.clone();
        // kron(u, v): u on the high qubit (1), v on the low qubit (0).
        dense.apply_two_qubit(0, 1, &kron(&u, &v)).unwrap();
        let mut seq = base;
        seq.apply_single(0, &v).unwrap();
        seq.apply_single(1, &u).unwrap();
        assert!((dense.fidelity(&seq).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn rzz_matches_cnot_rz_cnot() {
        let theta = 0.83;
        let mut prep = crate::Circuit::new(2);
        prep.h(0).ry(1, 0.6);
        let base = prep.run(StateVector::zero_state(2)).unwrap();
        let mut dense = base.clone();
        dense.apply_two_qubit(0, 1, &rzz(theta)).unwrap();
        let mut decomposed = base;
        decomposed.apply_controlled(0, 1, &gates::x()).unwrap();
        decomposed.apply_single(1, &gates::rz(theta)).unwrap();
        decomposed.apply_controlled(0, 1, &gates::x()).unwrap();
        assert!((dense.fidelity(&decomposed).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn two_qubit_preserves_norm() {
        let mut s = StateVector::plus_state(4);
        s.apply_two_qubit(1, 3, &rzz(2.2)).unwrap();
        s.apply_two_qubit(3, 1, &cnot4()).unwrap();
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn errors() {
        let mut s = StateVector::zero_state(2);
        assert!(matches!(
            s.apply_two_qubit(0, 5, &identity4()),
            Err(QsimError::QubitOutOfRange { qubit: 5, .. })
        ));
        assert!(matches!(
            s.apply_two_qubit(1, 1, &identity4()),
            Err(QsimError::DuplicateQubit { qubit: 1 })
        ));
    }
}
