//! Integration tests for the extension subsystems added on top of the
//! paper's core pipeline: warm-start baselines, the density-matrix noisy
//! simulator, the wider graph-generator/model zoo, and their interactions.

use graphs::{generators, stats, MaxCut};
use ml::{ForestModel, KnnModel, ModelKind, Regressor, RidgeModel};
use optimize::{extended_optimizers, Lbfgsb, Options, Powell, Spsa};
use qaoa::datagen::{DataGenConfig, ParameterDataset};
use qaoa::noisy::NoisyQaoa;
use qaoa::warmstart::{interp_step, linear_ramp, FourierFlow, InterpFlow};
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaInstance};
use qsim::{DensityMatrix, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_corpus() -> ParameterDataset {
    ParameterDataset::generate(&DataGenConfig {
        n_graphs: 8,
        n_nodes: 6,
        edge_probability: 0.5,
        max_depth: 3,
        restarts: 3,
        seed: 77,
        options: Options::default(),
        trend_preference_margin: 1e-3,
    })
    .expect("corpus generation")
}

#[test]
fn warm_starts_beat_random_on_function_calls() {
    // INTERP warm-starting each depth should make the final-depth
    // optimization cheaper than a cold random start at that depth.
    let mut rng = StdRng::seed_from_u64(21);
    let graph = generators::random_regular(8, 3, &mut rng).expect("valid");
    let problem = MaxCutProblem::new(&graph).expect("non-empty");
    let depth = 4;

    let out = InterpFlow::default()
        .run(&problem, depth, &Lbfgsb::default(), &mut rng)
        .expect("interp flow");
    // The warm-started final level is cheaper than the first cold level
    // scaled by the parameter count growth (a loose but meaningful bound).
    let final_calls = *out.calls_per_depth.last().expect("non-empty");

    let instance = QaoaInstance::new(problem, depth).expect("valid depth");
    let bounds = qaoa::parameter_bounds(depth).expect("valid depth");
    let mut cold_total = 0;
    for _ in 0..3 {
        let start = bounds.sample(&mut rng);
        cold_total += instance
            .optimize(&Lbfgsb::default(), &start, &Options::default())
            .expect("cold run")
            .function_calls;
    }
    let cold_mean = cold_total / 3;
    assert!(
        final_calls <= cold_mean * 2,
        "warm-started final level ({final_calls}) should not dwarf cold mean ({cold_mean})"
    );
    assert!(out.approximation_ratio > 0.85);
}

#[test]
fn all_warm_start_strategies_agree_on_easy_instance() {
    // On the 4-cycle every sensible strategy should find a near-perfect cut.
    let problem = MaxCutProblem::new(&generators::cycle(4)).expect("non-empty");
    let mut rng = StdRng::seed_from_u64(5);
    let interp = InterpFlow::default()
        .run(&problem, 2, &Lbfgsb::default(), &mut rng)
        .expect("interp");
    let fourier = FourierFlow::default()
        .run(&problem, 2, &Lbfgsb::default(), &mut rng)
        .expect("fourier");
    let ramp_init = linear_ramp(2, 1.5).expect("valid");
    let instance = QaoaInstance::new(problem, 2).expect("valid depth");
    let ramp = instance
        .optimize(&Lbfgsb::default(), &ramp_init, &Options::default())
        .expect("ramp");
    // Depth-1 QAOA on the 4-cycle caps at AR = 3/4, and the incremental
    // flows inherit that level-1 optimum, so "agree" means "all clear the
    // level-1 ceiling's neighbourhood", not "all reach 1".
    for (name, ar) in [
        ("interp", interp.approximation_ratio),
        ("fourier", fourier.approximation_ratio),
        ("ramp", ramp.approximation_ratio),
    ] {
        assert!(ar > 0.7, "{name} AR = {ar}");
    }
}

#[test]
fn interp_of_corpus_optimum_is_good_initialization() {
    // Take a real depth-2 optimum from the corpus and INTERP it to depth 3:
    // the resulting start should already score a decent AR before any
    // optimization.
    let corpus = small_corpus();
    let gid = 0;
    let rec = corpus.record(gid, 2).expect("depth-2 record");
    let packed: Vec<f64> = rec.gammas.iter().chain(&rec.betas).copied().collect();
    let init3 = interp_step(&packed).expect("valid packed");

    let problem = MaxCutProblem::new(&corpus.graphs()[gid]).expect("non-empty");
    let instance = QaoaInstance::new(problem.clone(), 3).expect("valid depth");
    let e = instance.ansatz().expectation(&init3).expect("valid params");
    let ar = problem.approximation_ratio(e);
    assert!(ar > 0.7, "INTERP start AR = {ar}");
}

#[test]
fn noisy_two_level_pipeline_end_to_end() {
    // Train noiselessly, deploy on a depolarized device: the predicted
    // initialization must still evaluate to a competitive AR under noise.
    let corpus = small_corpus();
    let (train, test) = corpus.split_by_graph(0.5);
    let predictor = ParameterPredictor::train(ModelKind::Linear, &train).expect("training");

    let graph = &test.graphs()[0];
    let problem = MaxCutProblem::new(graph).expect("non-empty");
    let noise = NoiseModel::uniform_depolarizing(0.0005, 0.005).expect("valid rates");

    // Level 1 under noise.
    let l1 = NoisyQaoa::new(problem.clone(), 1, noise.clone()).expect("small register");
    let mut rng = StdRng::seed_from_u64(3);
    let start = qaoa::parameter_bounds(1).expect("ok").sample(&mut rng);
    let l1_out = l1
        .optimize(&Lbfgsb::default(), &start, &Options::default())
        .expect("noisy level 1");

    let canon = qaoa::canonical::canonicalize_packed(&l1_out.params);
    let init = predictor
        .predict(canon[0], canon[1], 3)
        .expect("prediction");

    let l2 = NoisyQaoa::new(problem, 3, noise).expect("small register");
    let pre_ar = l2.approximation_ratio(&init).expect("valid params");
    let out = l2
        .optimize(&Lbfgsb::default(), &init, &Options::default())
        .expect("noisy level 2");
    assert!(out.approximation_ratio >= pre_ar - 1e-9);
    assert!(out.approximation_ratio > 0.5, "{}", out.approximation_ratio);
}

#[test]
fn density_matrix_agrees_with_statevector_on_qaoa_circuit() {
    // The cross-substrate identity behind every noisy experiment: at zero
    // noise the density-matrix energy equals the fast state-vector energy.
    let mut rng = StdRng::seed_from_u64(9);
    let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty");
    let params = [0.9, 0.3, 0.45, 0.15];

    let instance = QaoaInstance::new(problem.clone(), 2).expect("valid depth");
    let fast = instance
        .ansatz()
        .expectation(&params)
        .expect("valid params");

    let clean = NoisyQaoa::new(problem, 2, NoiseModel::noiseless()).expect("small register");
    let dm = clean.expectation(&params).expect("valid params");
    assert!((fast - dm).abs() < 1e-9, "fast {fast} vs dm {dm}");
}

#[test]
fn new_generators_produce_solvable_maxcut_instances() {
    let mut rng = StdRng::seed_from_u64(31);
    let graphs = vec![
        generators::barabasi_albert(8, 2, &mut rng).expect("BA"),
        generators::watts_strogatz(8, 4, 0.3, &mut rng).expect("WS"),
        generators::gnm(8, 12, &mut rng),
        generators::wheel(8),
        generators::barbell(4),
    ];
    for g in graphs {
        let exact = MaxCut::solve(&g);
        assert!(exact.value() > 0.0);
        let problem = MaxCutProblem::new(&g).expect("non-empty");
        let instance = QaoaInstance::new(problem, 1).expect("valid depth");
        let out = instance
            .optimize(&Lbfgsb::default(), &[0.5, 0.4], &Options::default())
            .expect("optimization");
        assert!(out.approximation_ratio > 0.5);
        assert!(out.approximation_ratio <= 1.0 + 1e-9);
    }
}

#[test]
fn weighted_maxcut_through_full_stack() {
    // Random edge weights flow through graph → Hamiltonian → ansatz → AR.
    let mut rng = StdRng::seed_from_u64(13);
    let base = generators::cycle(6);
    let weighted = generators::with_random_weights(&base, 0.5, 2.0, &mut rng);
    let exact = MaxCut::solve(&weighted);
    assert!(exact.value() > 0.0);

    let problem = MaxCutProblem::new(&weighted).expect("non-empty");
    let instance = QaoaInstance::new(problem, 2).expect("valid depth");
    let out = instance
        .optimize_multistart(&Lbfgsb::default(), 5, &mut rng, &Options::default())
        .expect("optimization");
    assert!(out.approximation_ratio > 0.7, "{}", out.approximation_ratio);
    assert!(out.approximation_ratio <= 1.0 + 1e-9);
}

#[test]
fn extension_models_predict_qaoa_parameters() {
    // Ridge, kNN and RandomForest all train on a real corpus and produce
    // in-domain predictions through the shared predictor plumbing.
    let corpus = small_corpus();
    for kind in [ModelKind::Ridge, ModelKind::Knn, ModelKind::Forest] {
        let predictor = ParameterPredictor::train(kind, &corpus).expect("training");
        let init = predictor.predict(1.0, 0.5, 3).expect("prediction");
        assert_eq!(init.len(), 6);
        for (i, v) in init.iter().enumerate() {
            let max = if i < 3 {
                qaoa::GAMMA_MAX
            } else {
                qaoa::BETA_MAX
            };
            assert!((0.0..=max).contains(v), "{kind}: param {i} = {v}");
        }
    }
}

#[test]
fn extension_models_fit_standalone() {
    // Direct Regressor-trait usage outside the predictor plumbing.
    let x = linalg::Matrix::from_rows(&[
        &[0.0, 1.0],
        &[1.0, 2.0],
        &[2.0, 3.0],
        &[3.0, 4.0],
        &[4.0, 5.0],
    ])
    .expect("matrix");
    let y = [1.0, 3.0, 5.0, 7.0, 9.0];
    let models: Vec<Box<dyn Regressor>> = vec![
        Box::new(RidgeModel::new(1e-6)),
        Box::new(KnnModel::new(2)),
        Box::new(ForestModel::new(30)),
    ];
    for mut m in models {
        m.fit(&x, &y).expect("fit");
        let p = m.predict(&[2.0, 3.0]).expect("predict");
        assert!((p - 5.0).abs() < 1.5, "{}: {p}", m.name());
    }
}

#[test]
fn extended_optimizers_all_solve_qaoa_depth1() {
    let problem = MaxCutProblem::new(&generators::cycle(6)).expect("non-empty");
    let instance = QaoaInstance::new(problem, 1).expect("valid depth");
    let opts = Options::default().with_max_iters(2000);
    for optimizer in extended_optimizers() {
        let out = instance
            .optimize(optimizer.as_ref(), &[1.0, 0.5], &opts)
            .expect("optimization");
        assert!(
            out.approximation_ratio > 0.7,
            "{}: AR = {}",
            optimizer.name(),
            out.approximation_ratio
        );
    }
}

#[test]
fn powell_and_spsa_comparable_to_paper_optimizers() {
    // The extension optimizers reach the same landscape optimum on a
    // deterministic instance (Powell exactly; SPSA approximately).
    let problem = MaxCutProblem::new(&generators::complete(5)).expect("non-empty");
    let instance = QaoaInstance::new(problem, 1).expect("valid depth");
    let reference = instance
        .optimize(&Lbfgsb::default(), &[1.0, 0.5], &Options::default())
        .expect("reference");
    let powell = instance
        .optimize(&Powell::default(), &[1.0, 0.5], &Options::default())
        .expect("powell");
    assert!((powell.expectation - reference.expectation).abs() < 1e-3);
    let spsa = instance
        .optimize(
            &Spsa::default(),
            &[1.0, 0.5],
            &Options::default().with_max_iters(1500),
        )
        .expect("spsa");
    assert!(spsa.expectation > reference.expectation - 0.1);
}

#[test]
fn graph_features_correlate_with_instance_hardness_inputs() {
    // Sanity of the structural feature vector across families: dense graphs
    // report higher density/clustering than sparse ones.
    let dense = stats::feature_vector(&generators::complete(8));
    let sparse = stats::feature_vector(&generators::cycle(8));
    assert!(dense[2] > sparse[2]); // density
    assert!(dense[8] > sparse[8]); // clustering
    assert_eq!(dense.len(), sparse.len());
}

#[test]
fn noise_model_reduces_purity_through_qaoa_stack() {
    let problem = MaxCutProblem::new(&generators::cycle(4)).expect("non-empty");
    let params = [0.8, 0.4];
    let mut purities = Vec::new();
    for p2 in [0.0, 0.01, 0.05] {
        let nq = NoisyQaoa::new(
            problem.clone(),
            1,
            NoiseModel::uniform_depolarizing(p2 / 10.0, p2).expect("rates"),
        )
        .expect("small register");
        purities.push(nq.state(&params).expect("valid params").purity());
    }
    assert!(purities[0] > purities[1] && purities[1] > purities[2]);
    assert!((purities[0] - 1.0).abs() < 1e-9);
}

#[test]
fn density_matrix_of_corpus_graph_respects_bounds() {
    // Full 8-node density simulation stays within physical bounds.
    let mut rng = StdRng::seed_from_u64(17);
    let graph = generators::erdos_renyi_nonempty(8, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty");
    let nq = NoisyQaoa::new(
        problem.clone(),
        2,
        NoiseModel::uniform_depolarizing(0.001, 0.01).expect("rates"),
    )
    .expect("small register");
    let rho: DensityMatrix = nq.state(&[0.7, 0.3, 0.5, 0.2]).expect("valid params");
    assert!((rho.trace() - 1.0).abs() < 1e-9);
    assert!(rho.hermiticity_deviation() < 1e-9);
    let e = rho
        .expectation_diagonal(problem.cost())
        .expect("matching dims");
    assert!(e >= 0.0 && e <= problem.optimal_cut() + 1e-9);
}
