//! Property-based tests (proptest) over the extension subsystems:
//! density-matrix physicality, warm-start domain invariants, extension
//! optimizers and models.

use graphs::generators;
use linalg::Matrix;
use ml::{ForestModel, KnnModel, Regressor, RidgeModel};
use optimize::{Bounds, Optimizer, Options, Powell, Spsa};
use proptest::prelude::*;
use qaoa::warmstart::{fourier_to_params, interp_step, linear_ramp};
use qaoa::{BETA_MAX, GAMMA_MAX};
use qsim::{Circuit, DensityMatrix, KrausChannel, NoiseModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(seed: u64, n_qubits: usize, n_gates: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(n_qubits);
    for _ in 0..n_gates {
        let q = rng.gen_range(0..n_qubits);
        match rng.gen_range(0..6u8) {
            0 => {
                circuit.h(q);
            }
            1 => {
                circuit.rx(q, rng.gen_range(-6.3..6.3));
            }
            2 => {
                circuit.rz(q, rng.gen_range(-6.3..6.3));
            }
            3 => {
                circuit.ry(q, rng.gen_range(-6.3..6.3));
            }
            4 if n_qubits > 1 => {
                let t = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                circuit.cnot(q, t);
            }
            _ if n_qubits > 1 => {
                let t = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                circuit.cz(q, t);
            }
            _ => {
                circuit.x(q);
            }
        }
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any noisy circuit execution leaves a physical state: unit trace,
    /// Hermitian, purity in [1/2ⁿ, 1].
    #[test]
    fn noisy_evolution_stays_physical(
        seed in 0u64..500,
        n_qubits in 1usize..4,
        n_gates in 1usize..25,
        p1 in 0.0f64..0.2,
        p2 in 0.0f64..0.2,
    ) {
        let circuit = random_circuit(seed, n_qubits, n_gates);
        let noise = NoiseModel::uniform_depolarizing(p1, p2).expect("valid rates");
        let mut rho = DensityMatrix::zero_state(n_qubits).expect("small register");
        rho.run(&circuit, &noise).expect("run");
        prop_assert!((rho.trace() - 1.0).abs() < 1e-8);
        prop_assert!(rho.hermiticity_deviation() < 1e-8);
        let purity = rho.purity();
        let floor = 1.0 / (1usize << n_qubits) as f64;
        prop_assert!(purity <= 1.0 + 1e-9);
        prop_assert!(purity >= floor - 1e-9);
        // Diagonal is a probability distribution.
        let probs = rho.probabilities();
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(probs.iter().all(|&p| p >= -1e-10));
    }

    /// Every built-in channel preserves trace on arbitrary mixed states.
    #[test]
    fn channels_preserve_trace_on_mixed_states(
        seed in 0u64..500,
        kind in 0u8..5,
        p in 0.0f64..1.0,
    ) {
        let channel = match kind {
            0 => KrausChannel::depolarizing(p),
            1 => KrausChannel::amplitude_damping(p),
            2 => KrausChannel::phase_damping(p),
            3 => KrausChannel::bit_flip(p),
            _ => KrausChannel::phase_flip(p),
        }.expect("valid channel");
        // Build a mixed state by running a noisy random circuit first.
        let circuit = random_circuit(seed, 2, 10);
        let mut rho = DensityMatrix::zero_state(2).expect("small register");
        rho.run(&circuit, &NoiseModel::uniform_depolarizing(0.05, 0.05).expect("rates"))
            .expect("run");
        let trace_before = rho.trace();
        rho.apply_channel(0, &channel).expect("channel");
        prop_assert!((rho.trace() - trace_before).abs() < 1e-9);
        prop_assert!(rho.hermiticity_deviation() < 1e-8);
    }

    /// INTERP grows the packed vector by exactly one stage per half and its
    /// outputs stay within the convex hull of {0} ∪ inputs.
    #[test]
    fn interp_step_convexity(
        depth in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut packed: Vec<f64> = (0..depth).map(|_| rng.gen_range(0.0..GAMMA_MAX)).collect();
        packed.extend((0..depth).map(|_| rng.gen_range(0.0..BETA_MAX)));
        let next = interp_step(&packed).expect("valid packed");
        prop_assert_eq!(next.len(), 2 * (depth + 1));
        let gmax = packed[..depth].iter().fold(0.0f64, |a, &b| a.max(b));
        let bmax = packed[depth..].iter().fold(0.0f64, |a, &b| a.max(b));
        for &g in &next[..depth + 1] {
            prop_assert!(g >= -1e-12 && g <= gmax + 1e-12);
        }
        for &b in &next[depth + 1..] {
            prop_assert!(b >= -1e-12 && b <= bmax + 1e-12);
        }
    }

    /// Fourier schedules are always inside the paper's parameter box, for
    /// any coefficients.
    #[test]
    fn fourier_params_always_in_box(
        depth in 1usize..8,
        q in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u: Vec<f64> = (0..q).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let v: Vec<f64> = (0..q).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let params = fourier_to_params(&u, &v, depth);
        prop_assert_eq!(params.len(), 2 * depth);
        for &g in &params[..depth] {
            prop_assert!((0.0..=GAMMA_MAX).contains(&g));
        }
        for &b in &params[depth..] {
            prop_assert!((0.0..=BETA_MAX).contains(&b));
        }
    }

    /// Linear ramps are monotone and in-domain for any positive total time.
    #[test]
    fn linear_ramp_monotone(
        depth in 1usize..10,
        total_time in 0.01f64..20.0,
    ) {
        let ramp = linear_ramp(depth, total_time).expect("valid depth");
        prop_assert_eq!(ramp.len(), 2 * depth);
        for i in 0..depth {
            prop_assert!((0.0..=GAMMA_MAX).contains(&ramp[i]));
            prop_assert!((0.0..=BETA_MAX).contains(&ramp[depth + i]));
            if i + 1 < depth {
                prop_assert!(ramp[i] <= ramp[i + 1] + 1e-12);
                prop_assert!(ramp[depth + i] + 1e-12 >= ramp[depth + i + 1]);
            }
        }
    }

    /// Powell and SPSA never step outside the feasible box and never
    /// worsen a finite starting value.
    #[test]
    fn extension_optimizers_feasible_and_monotone(
        seed in 0u64..200,
        dim in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let center: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let f = move |x: &[f64]| -> f64 {
            x.iter().zip(&center).map(|(a, b)| (a - b).powi(2)).sum()
        };
        let bounds = Bounds::uniform(dim, -2.0, 2.0).expect("valid bounds");
        let start = bounds.sample(&mut rng);
        let f_start = f(&start);
        let opts = Options::default().with_max_iters(300);
        for optimizer in [&Powell::default() as &dyn Optimizer, &Spsa::default()] {
            let r = optimizer.minimize(&f, &start, &bounds, &opts).expect("run");
            prop_assert!(bounds.contains(&r.x), "{} left the box", optimizer.name());
            prop_assert!(r.fx <= f_start + 1e-9, "{} worsened the start", optimizer.name());
            prop_assert!(r.n_calls > 0);
        }
    }

    /// Extension regressors interpolate within the target range on
    /// arbitrary monotone data (kNN and forests are averages of targets;
    /// ridge of a line recovers the line).
    #[test]
    fn extension_models_bounded_predictions(
        seed in 0u64..200,
        n in 6usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| i as f64 * rng.gen_range(0.5..2.0)).collect();
        let x = Matrix::from_rows(&rows).expect("matrix");
        let (ymin, ymax) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        let query = rng.gen_range(0.0..(n - 1) as f64);

        let mut knn = KnnModel::new(3);
        knn.fit(&x, &y).expect("fit");
        let p = knn.predict(&[query]).expect("predict");
        prop_assert!(p >= ymin - 1e-9 && p <= ymax + 1e-9);

        let mut forest = ForestModel::new(15);
        forest.fit(&x, &y).expect("fit");
        let p = forest.predict(&[query]).expect("predict");
        prop_assert!(p >= ymin - 1e-9 && p <= ymax + 1e-9);

        let mut ridge = RidgeModel::new(1e-8);
        ridge.fit(&x, &y).expect("fit");
        let p = ridge.predict(&[query]).expect("predict");
        prop_assert!(p.is_finite());
    }

    /// Generator contracts hold for arbitrary valid parameters.
    #[test]
    fn generator_invariants(
        seed in 0u64..500,
        nodes in 5usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ba = generators::barabasi_albert(nodes, 2, &mut rng).expect("BA");
        prop_assert_eq!(ba.n_nodes(), nodes);
        prop_assert_eq!(ba.n_edges(), 2 + (nodes - 3) * 2);
        prop_assert!(ba.is_connected());

        let ws = generators::watts_strogatz(nodes, 4, 0.3, &mut rng).expect("WS");
        prop_assert_eq!(ws.n_edges(), nodes * 2);

        let m = rng.gen_range(0..=nodes * (nodes - 1) / 2);
        let gnm = generators::gnm(nodes, m, &mut rng);
        prop_assert_eq!(gnm.n_edges(), m);
    }
}
