//! End-to-end integration tests of the full paper pipeline:
//! graphs → simulator → optimizers → corpus → predictor → two-level flow.

mod common;

use ml::metrics::mean;
use ml::ModelKind;
use optimize::{Lbfgsb, Options};
use qaoa::datagen::ParameterDataset;
use qaoa::evaluation::{naive_protocol, two_level_protocol};
use qaoa::{MaxCutProblem, ParameterPredictor, QaoaInstance, TwoLevelConfig, TwoLevelFlow};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_corpus() -> ParameterDataset {
    ParameterDataset::generate(&common::tiny_datagen(12, 6, 0.5, 3, 4, 1234))
        .expect("corpus generation")
}

#[test]
fn two_level_flow_reduces_function_calls_on_average() {
    // The paper's headline claim, at reduced scale: over unseen graphs, the
    // ML-initialized flow needs fewer loop iterations than the naive
    // random-initialization protocol at the same tolerance.
    let corpus = small_corpus();
    let (train, test) = corpus.split_by_graph(0.34);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let optimizer = Lbfgsb::default();
    let depth = 3;

    let naive = naive_protocol(
        test.graphs(),
        depth,
        &optimizer,
        4,
        &Options::default(),
        9,
        &qaoa::Scenario::Exact,
    )
    .expect("naive protocol");
    let ml = two_level_protocol(
        test.graphs(),
        depth,
        &optimizer,
        &predictor,
        1,
        &Options::default(),
        9,
        &qaoa::Scenario::Exact,
    )
    .expect("two-level protocol");

    let naive_fc = mean(&naive.iter().map(|s| s.1 as f64).collect::<Vec<_>>());
    let ml_fc = mean(&ml.iter().map(|s| s.1 as f64).collect::<Vec<_>>());
    assert!(
        ml_fc < naive_fc,
        "two-level mean FC {ml_fc} should beat naive {naive_fc}"
    );

    // Quality must not collapse: mean AR within a small margin of naive.
    let naive_ar = mean(&naive.iter().map(|s| s.0).collect::<Vec<_>>());
    let ml_ar = mean(&ml.iter().map(|s| s.0).collect::<Vec<_>>());
    assert!(
        ml_ar > naive_ar - 0.05,
        "two-level AR {ml_ar} collapsed vs naive {naive_ar}"
    );
}

#[test]
fn predictions_are_better_starts_than_random() {
    // The mechanism behind the reduction: predicted parameters start closer
    // to optimal, i.e. their initial expectation is higher than a random
    // start's on average.
    let corpus = small_corpus();
    let (train, test) = corpus.split_by_graph(0.34);
    let predictor = ParameterPredictor::train(ModelKind::Gpr, &train).expect("GPR training");
    let mut rng = StdRng::seed_from_u64(3);
    let depth = 3;
    let bounds = qaoa::parameter_bounds(depth).expect("valid depth");

    let mut predicted_better = 0usize;
    let mut total = 0usize;
    for (gid, graph) in test.graphs().iter().enumerate() {
        let problem = MaxCutProblem::new(graph).expect("non-empty graph");
        let instance = QaoaInstance::new(problem, depth).expect("valid depth");
        let d1 = test.record(gid, 1).expect("depth-1 record");
        let predicted = predictor
            .predict(d1.gammas[0], d1.betas[0], depth)
            .expect("prediction");
        let e_pred = instance
            .ansatz()
            .expectation(&predicted)
            .expect("valid params");
        // Average several random starts for a fair comparison.
        let random_mean: f64 = (0..5)
            .map(|_| {
                let start = bounds.sample(&mut rng);
                instance.ansatz().expectation(&start).expect("valid params")
            })
            .sum::<f64>()
            / 5.0;
        if e_pred > random_mean {
            predicted_better += 1;
        }
        total += 1;
    }
    assert!(
        predicted_better * 3 >= total * 2,
        "predicted starts beat random in only {predicted_better}/{total} graphs"
    );
}

#[test]
fn corpus_roundtrip_preserves_pipeline_behaviour() {
    // Save/load the corpus and verify the trained predictor is unchanged.
    let corpus = small_corpus();
    let mut buf = Vec::new();
    corpus.write_tsv(&mut buf).expect("serialize");
    let reloaded = ParameterDataset::read_tsv(&buf[..]).expect("deserialize");
    let p1 = ParameterPredictor::train(ModelKind::Linear, &corpus).expect("train original");
    let p2 = ParameterPredictor::train(ModelKind::Linear, &reloaded).expect("train reloaded");
    for pt in 1..=3 {
        let a = p1.predict(1.1, 0.6, pt).expect("prediction");
        let b = p2.predict(1.1, 0.6, pt).expect("prediction");
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "depth {pt}: {x} vs {y}");
        }
    }
}

#[test]
fn all_four_optimizers_complete_the_two_level_flow() {
    let corpus = small_corpus();
    let (train, _) = corpus.split_by_graph(0.5);
    let predictor = ParameterPredictor::train(ModelKind::Tree, &train).expect("training");
    let flow = TwoLevelFlow::new(&predictor);
    let problem = MaxCutProblem::new(&graphs::generators::cycle(6)).expect("non-empty graph");
    let mut rng = StdRng::seed_from_u64(8);
    for optimizer in optimize::all_optimizers() {
        let out = flow
            .run(
                &problem,
                2,
                optimizer.as_ref(),
                &TwoLevelConfig::default(),
                &mut rng,
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", optimizer.name()));
        assert!(out.total_calls() > 0, "{}", optimizer.name());
        assert!(
            out.approximation_ratio > 0.5,
            "{}: AR {}",
            optimizer.name(),
            out.approximation_ratio
        );
    }
}
