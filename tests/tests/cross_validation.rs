//! Cross-crate validation: the simulator's two execution paths, optimizer
//! agreement on shared landscapes, and analytic ground truths.

use graphs::{generators, Graph};
use optimize::{Lbfgsb, NelderMead, Options};
use qaoa::{landscape, MaxCutProblem, QaoaAnsatz, QaoaInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn gate_level_and_fast_paths_agree_on_random_ensemble() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..8 {
        let graph = generators::erdos_renyi_nonempty(6, 0.5, &mut rng);
        let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
        for p in 1..=4 {
            let ansatz = QaoaAnsatz::new(problem.clone(), p).expect("valid depth");
            let params: Vec<f64> = (0..2 * p)
                .map(|i| {
                    if i < p {
                        rng.gen_range(0.0..qaoa::GAMMA_MAX)
                    } else {
                        rng.gen_range(0.0..qaoa::BETA_MAX)
                    }
                })
                .collect();
            let fast = ansatz.expectation(&params).expect("valid params");
            let gate = ansatz
                .expectation_gate_level(&params)
                .expect("valid params");
            assert!(
                (fast - gate).abs() < 1e-9,
                "paths diverge at p={p}: {fast} vs {gate}"
            );
        }
    }
}

#[test]
fn optimizer_and_grid_scan_agree_on_p1_optimum() {
    // The best grid value must be attainable (within grid resolution) by
    // the local optimizer with multistart, and vice versa.
    let graph = generators::cycle(6);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let scan = landscape::p1_grid(&problem, 61, 31).expect("grid scan");
    let (_, _, grid_best) = scan.argmax();

    let instance = QaoaInstance::new(problem, 1).expect("valid depth");
    let mut rng = StdRng::seed_from_u64(5);
    let out = instance
        .optimize_multistart(&Lbfgsb::default(), 10, &mut rng, &Options::default())
        .expect("optimization");
    assert!(
        out.expectation >= grid_best - 0.02,
        "optimizer {} vs grid {grid_best}",
        out.expectation
    );
}

#[test]
fn gradient_and_gradient_free_optimizers_find_same_p1_value() {
    let graph = generators::complete(5);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let instance = QaoaInstance::new(problem, 1).expect("valid depth");
    let mut rng = StdRng::seed_from_u64(21);
    let a = instance
        .optimize_multistart(&Lbfgsb::default(), 8, &mut rng, &Options::default())
        .expect("lbfgsb run");
    let mut rng = StdRng::seed_from_u64(21);
    let b = instance
        .optimize_multistart(&NelderMead::default(), 8, &mut rng, &Options::default())
        .expect("nelder-mead run");
    assert!(
        (a.expectation - b.expectation).abs() < 0.02,
        "L-BFGS-B {} vs Nelder-Mead {}",
        a.expectation,
        b.expectation
    );
}

#[test]
fn bipartite_graphs_reach_ar_one_quickly() {
    // Even cycles are bipartite: MaxCut cuts all edges, and QAOA at modest
    // depth should approach AR ~ 1 far more easily than on odd cycles.
    let problem = MaxCutProblem::new(&generators::cycle(4)).expect("non-empty graph");
    let instance = QaoaInstance::new(problem, 2).expect("valid depth");
    let mut rng = StdRng::seed_from_u64(31);
    let out = instance
        .optimize_multistart(&Lbfgsb::default(), 10, &mut rng, &Options::default())
        .expect("optimization");
    assert!(
        out.approximation_ratio > 0.95,
        "AR = {}",
        out.approximation_ratio
    );
}

#[test]
fn expectation_bounded_by_exact_optimum_everywhere() {
    // ⟨C⟩ ≤ C_max for any parameters — the AR can never exceed 1.
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..5 {
        let graph = generators::erdos_renyi_nonempty(5, 0.6, &mut rng);
        let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
        let ansatz = QaoaAnsatz::new(problem.clone(), 2).expect("valid depth");
        for _ in 0..20 {
            let params: Vec<f64> = vec![
                rng.gen_range(0.0..qaoa::GAMMA_MAX),
                rng.gen_range(0.0..qaoa::GAMMA_MAX),
                rng.gen_range(0.0..qaoa::BETA_MAX),
                rng.gen_range(0.0..qaoa::BETA_MAX),
            ];
            let e = ansatz.expectation(&params).expect("valid params");
            assert!(e <= problem.optimal_cut() + 1e-9);
            assert!(e >= 0.0 - 1e-9);
        }
    }
}

#[test]
fn single_triangle_p1_analytic_bound() {
    // The odd 3-cycle cannot be cut fully: C_max = 2 of 3 edges. QAOA p=1
    // reaches a known ⟨C⟩ well below 2 but above the random-guess 1.5.
    let problem =
        MaxCutProblem::new(&Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).expect("triangle"))
            .expect("non-empty graph");
    let instance = QaoaInstance::new(problem, 1).expect("valid depth");
    let mut rng = StdRng::seed_from_u64(13);
    let out = instance
        .optimize_multistart(&Lbfgsb::default(), 12, &mut rng, &Options::default())
        .expect("optimization");
    assert!(out.expectation > 1.5, "should beat the uniform state");
    assert!(out.expectation < 2.0 + 1e-9);
}
