//! Integration tests for `QMODEL1` model artifacts: save→load round trips
//! that answer bit-identically for every model kind, discard-and-retrain
//! fallback for damaged files, and the artifact driving a real `PREDICT`
//! serve session (the cross-process promise behind `qaoa-predict`).

mod common;

use common::temp_path;
use engine::model::{self, ModelLoad};
use engine::{BatchConfig, Engine};
use ml::ModelKind;
use optimize::Lbfgsb;
use qaoa::datagen::ParameterDataset;
use qaoa::ParameterPredictor;

/// The corpus master seed the round-trip artifacts are scoped to.
const CORPUS_SEED: u64 = 33;

/// The shared training corpus: small enough for CI, deep enough that the
/// predictor has distinct per-depth stages to persist.
fn corpus() -> ParameterDataset {
    let config = common::tiny_datagen(6, 5, 0.6, 3, 2, CORPUS_SEED);
    let (ds, _) = engine::corpus::generate(&config, &Engine::new(2)).expect("corpus");
    ds
}

/// Feature probes spanning the predictor's input range (depth-1 optima
/// land in [0, π/2] × [0, π/4]; include out-of-range values to exercise
/// the clamp path too).
const PROBES: [(f64, f64); 4] = [(0.4, 0.2), (0.9, 0.6), (1.3, 0.1), (2.0, 0.9)];

/// Every supported model kind survives save→load with bit-identical
/// predictions at every depth — the serving process answers exactly what
/// the training process would have.
#[test]
fn every_model_kind_round_trips_bit_identically() {
    let ds = corpus();
    for kind in ModelKind::EXTENDED {
        let trained = ParameterPredictor::train(kind, &ds).expect("training");
        let path = temp_path(&format!("model_{kind:?}"));
        model::save(&trained, &path, CORPUS_SEED).expect("save");
        let loaded = match model::load(&path, CORPUS_SEED) {
            ModelLoad::Loaded(p) => p,
            other => panic!("{kind:?}: expected Loaded, got {}", other.summary()),
        };
        assert_eq!(loaded.kind(), trained.kind());
        assert_eq!(loaded.max_depth(), trained.max_depth());
        for depth in 1..=trained.max_depth() {
            for (gamma, beta) in PROBES {
                let a = trained.predict(gamma, beta, depth).expect("predict");
                let b = loaded.predict(gamma, beta, depth).expect("predict");
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&a),
                    bits(&b),
                    "{kind:?}: depth {depth} probe ({gamma}, {beta}) drifted across save/load"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Damaged or out-of-scope artifacts are discarded, never fatal — the
/// driver retrains and overwrites, exactly like the depth-1 cache file.
#[test]
fn corrupt_stale_or_misseeded_artifacts_are_discarded_not_fatal() {
    let ds = corpus();
    let trained = ParameterPredictor::train(ModelKind::Linear, &ds).expect("training");
    let path = temp_path("model_fallback");
    model::save(&trained, &path, 2020).expect("save");
    let good = std::fs::read_to_string(&path).unwrap();

    let cases: Vec<(&str, String)> = vec![
        ("binary garbage", "\u{1}\u{2}\u{3} not a model\n".into()),
        ("empty file", String::new()),
        ("stale version", good.replacen("QMODEL1", "QMODEL0", 1)),
        ("foreign seed", good.replacen("seed=2020", "seed=999", 1)),
        ("unknown kind", good.replacen("kind=LM", "kind=ORACLE", 1)),
        (
            "truncated (no END trailer)",
            good.lines().take(3).collect::<Vec<_>>().join("\n"),
        ),
    ];
    for (what, text) in cases {
        std::fs::write(&path, text).unwrap();
        let status = model::load(&path, 2020);
        assert!(
            matches!(status, ModelLoad::Discarded(_)),
            "{what}: expected Discarded, got {}",
            status.summary()
        );
        // Regeneration: save over the bad file, reload cleanly.
        model::save(&trained, &path, 2020).expect("overwrite");
        assert!(
            matches!(model::load(&path, 2020), ModelLoad::Loaded(_)),
            "{what}: regenerated file must load"
        );
    }

    // A missing path is a cold start, not an error.
    std::fs::remove_file(&path).ok();
    assert!(matches!(model::load(&path, 2020), ModelLoad::Missing));
}

/// The artifact actually serves: a predictor saved by one "process" and
/// loaded by another answers a `PREDICT` line with exactly the bits the
/// in-memory original produces.
#[test]
fn loaded_artifact_serves_predict_with_the_original_bits() {
    let ds = corpus();
    let trained = ParameterPredictor::train(ModelKind::Gpr, &ds).expect("training");
    let path = temp_path("model_serve");
    let config = BatchConfig::default();
    model::save(&trained, &path, config.master_seed).expect("save");
    let loaded = match model::load(&path, config.master_seed) {
        ModelLoad::Loaded(p) => p,
        other => panic!("expected Loaded, got {}", other.summary()),
    };
    std::fs::remove_file(&path).ok();

    // Warm the class (depth-1 PREDICT), then ask for depth 3: the tier-2
    // answer must be the loaded model's prediction from the cached optimum.
    let input = "QW1 PREDICT 1 1 2 5 0-1,1-2,2-3,3-4,4-0\n\
                 QW1 PREDICT 2 3 2 5 0-1,1-2,2-3,3-4,4-0\n";
    let run = |predictor: &ParameterPredictor| {
        let engine = Engine::new(1);
        let mut out = Vec::new();
        engine::server::serve_with_model(
            std::io::Cursor::new(input),
            &mut out,
            &engine,
            &Lbfgsb::default(),
            &config,
            Some(predictor),
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    };
    let from_trained = run(&trained);
    let from_loaded = run(&loaded);
    assert_eq!(
        from_loaded, from_trained,
        "a reloaded artifact must serve byte-identical transcripts"
    );
    assert!(
        from_loaded.contains("QW1 PREDICTED 2 2 "),
        "deep answer is tier 2"
    );
}
