//! Bit-parity of the SoA/SIMD kernels (`qsim::soa`) against the scalar
//! `StateVector` reference, the invariant the whole `EvalContext` fast
//! path rests on: **per-amplitude floating-point operations are identical
//! in value and order**, so amplitudes match bitwise — not to tolerance —
//! for any width, any depth, any parameters, and any within-state thread
//! budget.
//!
//! Thread budgets come from `KERNEL_PARITY_THREADS` (comma-separated,
//! default `1,4`), so CI can pin serial and fanned-out runs as separate
//! steps: `KERNEL_PARITY_THREADS=1` then `KERNEL_PARITY_THREADS=4`.

use graphs::generators;
use proptest::prelude::*;
use qaoa::{EvalContext, MaxCutProblem, QaoaAnsatz};
use qsim::soa::SplitState;
use qsim::{Complex64, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread budgets under test, from `KERNEL_PARITY_THREADS`.
fn thread_budgets() -> Vec<usize> {
    let spec = std::env::var("KERNEL_PARITY_THREADS").unwrap_or_else(|_| "1,4".to_string());
    let budgets: Vec<usize> = spec
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&t| t > 0)
        .collect();
    assert!(
        !budgets.is_empty(),
        "KERNEL_PARITY_THREADS must list at least one positive budget, got {spec:?}"
    );
    budgets
}

/// Asserts bitwise amplitude equality between the SoA state and the
/// scalar reference.
fn assert_bit_identical(soa: &SplitState, reference: &StateVector, what: &str) {
    assert_eq!(soa.dim(), reference.dim(), "{what}: dimension mismatch");
    for (i, amp) in reference.amplitudes().iter().enumerate() {
        let got = soa.amplitude(i);
        assert_eq!(
            got.re.to_bits(),
            amp.re.to_bits(),
            "{what}: re differs at amplitude {i}: {} vs {}",
            got.re,
            amp.re
        );
        assert_eq!(
            got.im.to_bits(),
            amp.im.to_bits(),
            "{what}: im differs at amplitude {i}: {} vs {}",
            got.im,
            amp.im
        );
    }
}

/// Runs the full p-layer QAOA circuit on both paths at every budget and
/// asserts bitwise parity of states and expectations.
fn check_circuit_parity(n: usize, gammas: &[f64], betas: &[f64], graph_seed: u64) {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    let graph = generators::erdos_renyi_nonempty(n, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let cost = problem.cost();

    // Scalar reference: the pre-SoA kernels, untouched in qsim::state.
    let mut reference = StateVector::plus_state(n);
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        let table: Vec<Complex64> = cost
            .levels()
            .iter()
            .map(|&v| Complex64::cis(-gamma * v))
            .collect();
        reference
            .apply_phase_levels(cost.level_of(), &table)
            .expect("matching dims");
        reference.apply_rx_layer(2.0 * beta);
    }
    let reference_e = cost.expectation(&reference).expect("matching dims");

    for &threads in &thread_budgets() {
        let mut soa = SplitState::plus_state(n);
        for (&gamma, &beta) in gammas.iter().zip(betas) {
            let mut table_re = Vec::new();
            let mut table_im = Vec::new();
            for &v in cost.levels() {
                let angle = -gamma * v;
                table_re.push(angle.cos());
                table_im.push(angle.sin());
            }
            soa.apply_phase_rx(cost.level_of(), &table_re, &table_im, 2.0 * beta, threads);
        }
        assert_bit_identical(&soa, &reference, &format!("n={n} threads={threads}"));
        let soa_e = soa.expectation_diag(cost.diagonal(), threads);
        // The SoA reduction tiles differently from the scalar sum, so the
        // expectation is budget-invariant (bitwise across budgets) and
        // tolerance-close to the scalar value.
        assert!(
            (soa_e - reference_e).abs() <= 1e-12 * reference_e.abs().max(1.0),
            "n={n} threads={threads}: expectation drifted: {soa_e} vs {reference_e}"
        );
    }
}

/// Runs `expectation_and_grad_in` at every budget and asserts the energy
/// and every gradient component are bitwise identical across budgets.
fn check_gradient_budget_invariance(n: usize, p: usize, params: &[f64], graph_seed: u64) {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    let graph = generators::erdos_renyi_nonempty(n, 0.5, &mut rng);
    let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
    let ansatz = QaoaAnsatz::new(problem, p).expect("valid depth");

    let mut baseline: Option<(f64, Vec<f64>)> = None;
    for &threads in &thread_budgets() {
        let mut ctx = EvalContext::new(n);
        let mut grad = vec![0.0; 2 * p];
        let e = qaoa::eval::with_within_state_threads(threads, || {
            ansatz
                .expectation_and_grad_in(&mut ctx, params, &mut grad)
                .expect("valid params")
        });
        match &baseline {
            None => baseline = Some((e, grad)),
            Some((e0, grad0)) => {
                assert_eq!(
                    e.to_bits(),
                    e0.to_bits(),
                    "n={n} threads={threads}: energy differs across budgets"
                );
                for (i, (g, g0)) in grad.iter().zip(grad0).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        g0.to_bits(),
                        "n={n} threads={threads}: grad[{i}] differs across budgets"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small circuits: SoA amplitudes are bit-identical to the
    /// scalar reference at every thread budget. Widths 2..=9 cover the
    /// SIMD lane boundary (SSE2 holds 2 f64 lanes) many times over, plus
    /// every qubit-0 / high-qubit kernel split below one tile.
    #[test]
    fn random_circuits_bit_identical(
        seed in 0u64..1000,
        n in 2usize..10,
        depth in 1usize..4,
        gamma_frac in proptest::collection::vec(-1.0f64..1.0, 3),
        beta_frac in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let gammas: Vec<f64> = gamma_frac[..depth].iter().map(|f| f * 2.0).collect();
        let betas: Vec<f64> = beta_frac[..depth].iter().map(|f| f * 2.0).collect();
        check_circuit_parity(n, &gammas, &betas, seed);
    }

    /// Random parameters: energies and gradients through the full
    /// `EvalContext` adjoint path are bitwise invariant in the budget.
    #[test]
    fn random_gradients_budget_invariant(
        seed in 0u64..1000,
        n in 2usize..9,
        depth in 1usize..4,
        frac in proptest::collection::vec(0.05f64..0.95, 6),
    ) {
        let mut params = Vec::with_capacity(2 * depth);
        params.extend(frac.iter().take(depth).map(|f| f * qaoa::GAMMA_MAX));
        params.extend(frac[depth..2 * depth].iter().map(|f| f * qaoa::BETA_MAX));
        check_gradient_budget_invariance(n, depth, &params, seed);
    }
}

/// Widths straddling the cache tile (`TILE` amplitudes: n = TILE_BITS
/// is exactly one tile, n = TILE_BITS + 1 is the first multi-tile
/// width) stay bitwise identical to the scalar reference.
#[test]
fn tile_boundary_widths_bit_identical() {
    for n in [qsim::soa::TILE_BITS, qsim::soa::TILE_BITS + 1] {
        check_circuit_parity(n, &[0.7, -0.4], &[0.3, 0.9], 42 + n as u64);
    }
}

/// Widths straddling the within-state parallelism threshold
/// (`PAR_MIN_DIM` amplitudes: one qubit below stays serial at any
/// budget, the threshold width actually fans out when the budget
/// allows) stay bitwise identical to the scalar reference — the
/// serial ≡ parallel invariant.
#[test]
fn parallelism_threshold_widths_bit_identical() {
    let par_min_qubits = qsim::soa::PAR_MIN_DIM.trailing_zeros() as usize;
    for n in [par_min_qubits - 1, par_min_qubits] {
        check_circuit_parity(n, &[0.55], &[-0.25], 42 + n as u64);
    }
}

/// Gradient budget-invariance at a width past the parallelism threshold:
/// the adjoint backward pass fans out too, and its tiled reductions
/// combine partials in fixed index order.
#[test]
fn gradient_budget_invariant_past_threshold() {
    let par_min_qubits = qsim::soa::PAR_MIN_DIM.trailing_zeros() as usize;
    check_gradient_budget_invariance(par_min_qubits, 1, &[0.6, 0.2], 7);
}
