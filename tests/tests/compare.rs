//! Dedicated coverage for `engine::compare` — the parallel Table-I sweep.
//!
//! Contract under test: the engine-parallel sweep reproduces the serial
//! `qaoa::evaluation` protocols **bit-for-bit**, cell by cell, and its
//! cost accounting (function and gradient evaluations) is a pure function
//! of the inputs — independent of worker count and schedule.

mod common;

use engine::{BatchConfig, Engine, Job, Pool};
use ml::ModelKind;
use optimize::{Lbfgsb, Slsqp};
use qaoa::evaluation::{self, EvaluationConfig};
use qaoa::ParameterPredictor;

/// A small trained predictor plus held-out test graphs, shared by the
/// sweep tests.
fn predictor_and_test_graphs() -> (ParameterPredictor, Vec<graphs::Graph>) {
    // Depth 3 so the predictor covers both target depths of the sweep.
    let config = common::tiny_datagen(8, 5, 0.6, 3, 2, 91);
    let (ds, _) = engine::corpus::generate(&config, &Engine::new(2)).expect("corpus");
    let (train, test) = ds.split_by_graph(0.5);
    let predictor = ParameterPredictor::train(ModelKind::Linear, &train).expect("training");
    (predictor, test.graphs().to_vec())
}

#[test]
fn every_table1_cell_matches_the_serial_sweep() {
    // Multi-cell parity: 2 optimizers x 2 depths, every row equal to the
    // serial `evaluation::compare` — means, SDs, and reduction percentages
    // included (ComparisonRow compares exactly).
    let (predictor, graphs) = predictor_and_test_graphs();
    let optimizers: Vec<Box<dyn optimize::Optimizer + Send + Sync>> =
        vec![Box::new(Lbfgsb::default()), Box::new(Slsqp::default())];
    let eval = EvaluationConfig {
        depths: vec![2, 3],
        naive_starts: 2,
        level1_starts: 1,
        options: Default::default(),
        seed: 5,
        scenario: qaoa::Scenario::Exact,
    };
    let serial = evaluation::compare(&graphs, &optimizers, &predictor, &eval).expect("serial");
    let parallel = engine::compare::compare(&graphs, &optimizers, &predictor, &eval, &Pool::new(4))
        .expect("parallel");
    assert_eq!(serial.len(), 4, "2 optimizers x 2 depths");
    assert_eq!(serial.len(), parallel.len());
    for (cell, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a, b, "cell {cell} ({} p={}) differs", a.optimizer, a.depth);
    }
}

#[test]
fn sweep_cost_accounting_is_schedule_independent() {
    // The smoke for FC purity: the same sweep at 1, 2, and 5 workers
    // yields bit-identical function-call statistics in every cell. (FC
    // means are exact sums of integer counts divided by a fixed n, so
    // bit-equality is the right assertion, not approximate equality.)
    let (predictor, graphs) = predictor_and_test_graphs();
    let optimizers: Vec<Box<dyn optimize::Optimizer + Send + Sync>> =
        vec![Box::new(Lbfgsb::default())];
    let eval = EvaluationConfig {
        depths: vec![2],
        naive_starts: 2,
        level1_starts: 1,
        options: Default::default(),
        seed: 13,
        scenario: qaoa::Scenario::Exact,
    };
    let runs: Vec<_> = [1usize, 2, 5]
        .iter()
        .map(|&threads| {
            engine::compare::compare(&graphs, &optimizers, &predictor, &eval, &Pool::new(threads))
                .expect("sweep")
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(run.len(), runs[0].len());
        for (a, b) in runs[0].iter().zip(run) {
            assert_eq!(a.naive_fc_mean.to_bits(), b.naive_fc_mean.to_bits());
            assert_eq!(a.naive_fc_sd.to_bits(), b.naive_fc_sd.to_bits());
            assert_eq!(a.ml_fc_mean.to_bits(), b.ml_fc_mean.to_bits());
            assert_eq!(a.ml_fc_sd.to_bits(), b.ml_fc_sd.to_bits());
            assert_eq!(a.naive_ar_mean.to_bits(), b.naive_ar_mean.to_bits());
            assert_eq!(a.ml_ar_mean.to_bits(), b.ml_ar_mean.to_bits());
        }
    }
}

#[test]
fn gradient_and_fev_counts_are_schedule_independent() {
    // Batch-level accounting: total nfev and njev are pure functions of
    // the job queue, not of the worker count or schedule.
    let jobs: Vec<Job> = common::fixture_graphs(8, 5, 21)
        .into_iter()
        .enumerate()
        .map(|(i, g)| Job::new(g, 1 + i % 2, 2))
        .collect();
    let config = BatchConfig {
        master_seed: 17,
        ..BatchConfig::default()
    };
    let (_, reference) = Engine::new(1)
        .run_batch(&Lbfgsb::default(), &jobs, &config)
        .expect("serial batch");
    assert!(
        reference.total_gradient_calls > 0,
        "L-BFGS-B consumes analytic gradients"
    );
    for threads in [2usize, 4] {
        let (_, report) = Engine::new(threads)
            .run_batch(&Lbfgsb::default(), &jobs, &config)
            .expect("parallel batch");
        assert_eq!(report.total_function_calls, reference.total_function_calls);
        assert_eq!(report.total_gradient_calls, reference.total_gradient_calls);
        for (a, b) in reference.jobs.iter().zip(&report.jobs) {
            assert_eq!(a.function_calls, b.function_calls);
            assert_eq!(a.gradient_calls, b.gradient_calls);
        }
    }
}

#[test]
fn parallel_two_level_protocol_matches_serial() {
    // The two-level fan-out (previously untested): identical samples at
    // any pool size.
    let (predictor, graphs) = predictor_and_test_graphs();
    let optimizer = Lbfgsb::default();
    let options = Default::default();
    let scenario = qaoa::Scenario::Exact;
    let serial = evaluation::two_level_protocol(
        &graphs, 2, &optimizer, &predictor, 1, &options, 23, &scenario,
    )
    .expect("serial two-level");
    for threads in [1usize, 3] {
        let parallel = engine::compare::two_level_protocol(
            &graphs,
            2,
            &optimizer,
            &predictor,
            1,
            &options,
            23,
            &scenario,
            &Pool::new(threads),
        )
        .expect("parallel two-level");
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "graph {i} AR differs");
            assert_eq!(a.1, b.1, "graph {i} FC differs");
        }
    }
}

#[test]
fn empty_sweeps_are_well_formed() {
    // No graphs: every cell still materializes (with empty samples), so
    // downstream table rendering never indexes out of bounds.
    let (predictor, _) = predictor_and_test_graphs();
    let optimizers: Vec<Box<dyn optimize::Optimizer + Send + Sync>> =
        vec![Box::new(Lbfgsb::default())];
    let eval = EvaluationConfig {
        depths: vec![2, 3],
        naive_starts: 2,
        level1_starts: 1,
        options: Default::default(),
        seed: 3,
        scenario: qaoa::Scenario::Exact,
    };
    let rows = engine::compare::compare(&[], &optimizers, &predictor, &eval, &Pool::new(2))
        .expect("empty sweep");
    assert_eq!(rows.len(), 2);
    // No optimizers / no depths: no cells.
    assert!(
        engine::compare::compare(&[], &[], &predictor, &eval, &Pool::new(2))
            .expect("no optimizers")
            .is_empty()
    );
}
