//! The adjoint-gradient contract of the evaluation pipeline:
//!
//! * `expectation_and_grad_in` matches central finite differences to 1e-6
//!   on random graphs at depths 1–3 (proptest),
//! * `EvalContext` reuse is bit-identical to fresh-state evaluation,
//! * L-BFGS-B driven by analytic gradients reaches the finite-difference
//!   optimum with strictly fewer objective evaluations (`nfev`) on the
//!   Table-I workload.

use graphs::generators;
use optimize::{central_difference, Bounds, Counted, Optimizer, Options};
use proptest::prelude::*;
use qaoa::{parameter_bounds, EvalContext, MaxCutProblem, QaoaAnsatz, QaoaInstance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The adjoint gradient agrees with central differences on random
    /// Erdős–Rényi graphs, depths 1..=3, everywhere in the parameter box.
    #[test]
    fn adjoint_matches_central_difference(
        seed in 0u64..10_000,
        n in 3usize..7,
        depth in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = generators::erdos_renyi_nonempty(n, 0.5, &mut rng);
        let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
        let ansatz = QaoaAnsatz::new(problem, depth).expect("valid depth");
        let params: Vec<f64> = (0..2 * depth)
            .map(|i| {
                if i < depth {
                    rng.gen_range(0.0..qaoa::GAMMA_MAX)
                } else {
                    rng.gen_range(0.0..qaoa::BETA_MAX)
                }
            })
            .collect();

        let mut ctx = EvalContext::new(n);
        let mut grad = vec![0.0; 2 * depth];
        let energy = ansatz
            .expectation_and_grad_in(&mut ctx, &params, &mut grad)
            .expect("valid params");
        prop_assert!((energy - ansatz.expectation(&params).expect("valid params")).abs() < 1e-12);

        // Reference: central differences over the plain expectation, with a
        // box wide enough that no probe needs clamping. At rel_step 1e-10
        // the internal step_size() clamp floors the step at √ε·1e-2 ≈
        // 1.5e-10 absolute, where FD roundoff dominates at ~|f|·ε/2h;
        // measured deviation stays below ~1e-7 on these graph sizes,
        // comfortably inside the 1e-6 comparison tolerance.
        let f = |x: &[f64]| ansatz.expectation(x).expect("valid params");
        let counted = Counted::new(&f);
        let wide = Bounds::uniform(2 * depth, -100.0, 100.0).expect("valid bounds");
        let reference = central_difference(&counted, &params, &wide, 1e-10);
        for (k, (a, r)) in grad.iter().zip(&reference).enumerate() {
            prop_assert!(
                (a - r).abs() < 1e-6,
                "n={}, p={}, param {}: adjoint {} vs central {}",
                n, depth, k, a, r
            );
        }
    }

    /// Repeated evaluations in one reused context are bit-identical to
    /// fresh-state evaluations, interleaved with gradient calls or not.
    #[test]
    fn context_reuse_is_bit_identical(
        seed in 0u64..10_000,
        n in 3usize..7,
        depth in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let graph = generators::erdos_renyi_nonempty(n, 0.5, &mut rng);
        let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
        let ansatz = QaoaAnsatz::new(problem, depth).expect("valid depth");
        let mut reused = EvalContext::new(n);
        let mut grad = vec![0.0; 2 * depth];
        for round in 0..4 {
            let params: Vec<f64> = (0..2 * depth)
                .map(|i| {
                    if i < depth {
                        rng.gen_range(0.0..qaoa::GAMMA_MAX)
                    } else {
                        rng.gen_range(0.0..qaoa::BETA_MAX)
                    }
                })
                .collect();
            let fresh = ansatz
                .expectation_in(&mut EvalContext::new(n), &params)
                .expect("valid params");
            let warm = ansatz
                .expectation_in(&mut reused, &params)
                .expect("valid params");
            prop_assert!(fresh.to_bits() == warm.to_bits(), "round {}", round);
            // A gradient pass must not perturb subsequent evaluations.
            let with_grad = ansatz
                .expectation_and_grad_in(&mut reused, &params, &mut grad)
                .expect("valid params");
            prop_assert!(fresh.to_bits() == with_grad.to_bits(), "grad round {}", round);
        }
    }
}

/// The acceptance workload: on Table-I-style graphs (8 nodes, p = 2..=3),
/// L-BFGS-B with the adjoint gradient must match the finite-difference
/// optimum while spending strictly fewer objective evaluations.
#[test]
fn analytic_lbfgsb_beats_finite_differences_on_nfev() {
    let mut rng = StdRng::seed_from_u64(2020);
    let optimizer = optimize::Lbfgsb::default();
    let options = Options::default();
    for depth in [2usize, 3] {
        for _ in 0..4 {
            let graph = generators::erdos_renyi_nonempty(8, 0.5, &mut rng);
            let problem = MaxCutProblem::new(&graph).expect("non-empty graph");
            let instance = QaoaInstance::new(problem.clone(), depth).expect("valid depth");
            let bounds = parameter_bounds(depth).expect("valid depth");
            let start = bounds.sample(&mut rng);

            // Analytic path: QaoaInstance routes through the gradient-
            // capable objective.
            let analytic = instance
                .optimize(&optimizer, &start, &options)
                .expect("analytic run");
            assert!(analytic.gradient_calls > 0, "adjoint gradient unused");

            // Finite-difference path: same optimizer fed a plain closure.
            let ansatz = QaoaAnsatz::new(problem.clone(), depth).expect("valid depth");
            let f = |x: &[f64]| -ansatz.expectation(x).expect("in-bounds params");
            let fd = optimizer
                .minimize(&f, &start, &bounds, &options)
                .expect("fd run");
            assert_eq!(fd.n_grad_calls, 0);

            let fd_expectation = -fd.fx;
            assert!(
                analytic.expectation >= fd_expectation - 1e-6,
                "p={depth}: analytic optimum {} worse than FD {}",
                analytic.expectation,
                fd_expectation
            );
            assert!(
                analytic.function_calls < fd.n_calls,
                "p={depth}: analytic nfev {} not below FD nfev {}",
                analytic.function_calls,
                fd.n_calls
            );
        }
    }
}

/// Gradient length mismatches are rejected, not silently truncated.
#[test]
fn gradient_buffer_length_is_checked() {
    let problem = MaxCutProblem::new(&generators::cycle(4)).expect("non-empty graph");
    let ansatz = QaoaAnsatz::new(problem, 2).expect("valid depth");
    let mut ctx = EvalContext::new(4);
    let mut short = [0.0; 3];
    assert!(matches!(
        ansatz.expectation_and_grad_in(&mut ctx, &[0.1, 0.2, 0.3, 0.4], &mut short),
        Err(qaoa::QaoaError::ParameterCount {
            expected: 4,
            actual: 3
        })
    ));
}
