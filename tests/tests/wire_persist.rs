//! Integration tests for the wire codec, cache persistence, and the job
//! server: encode→decode identity (property-tested), cold-write/warm-read
//! cache files, corrupt/stale fallback, and end-to-end serve sessions.

mod common;

use common::temp_path;
use engine::persist::{self, LoadStatus};
use engine::{wire, BatchConfig, Engine, Job, Level1Cache, Level1Key};
use graphs::generators;
use optimize::{Lbfgsb, Termination};
use proptest::prelude::*;
use qaoa::canonical::graph_key;
use qaoa::datagen::OptimalRecord;
use qaoa::InstanceOutcome;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn termination_from(index: usize) -> Termination {
    [
        Termination::FtolSatisfied,
        Termination::GtolSatisfied,
        Termination::StepSizeZero,
        Termination::MaxIterations,
        Termination::MaxCalls,
        Termination::NonFinite,
    ][index % 6]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonical keys survive the wire bit-for-bit, hash included.
    #[test]
    fn key_encode_decode_identity(seed in 0u64..10_000, n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_nonempty(n, 0.5, &mut rng);
        let key = graph_key(&g);
        let decoded = wire::decode_key(&wire::encode_key(&key)).expect("round trip");
        prop_assert_eq!(&decoded, &key);
        prop_assert_eq!(decoded.hash64(), key.hash64());
    }

    /// Corpus records survive the wire with bit-exact floats.
    #[test]
    fn record_encode_decode_identity(
        graph_id in 0usize..1000,
        depth in 1usize..7,
        fc in 0usize..100_000,
        values in proptest::collection::vec(-1.0e3f64..1.0e3, 2..14),
    ) {
        let p = values.len() / 2;
        let record = OptimalRecord {
            graph_id,
            depth,
            gammas: values[..p].to_vec(),
            betas: values[p..2 * p].to_vec(),
            expectation: values[0] * 1.0e-17,
            approximation_ratio: values[p] / 1.0e3,
            function_calls: fc,
        };
        let back = wire::decode_record(&wire::encode_record(&record)).expect("round trip");
        prop_assert_eq!(back.graph_id, record.graph_id);
        prop_assert_eq!(back.depth, record.depth);
        prop_assert_eq!(back.function_calls, record.function_calls);
        prop_assert_eq!(back.gammas.len(), record.gammas.len());
        for (a, b) in record.gammas.iter().zip(&back.gammas) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in record.betas.iter().zip(&back.betas) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.expectation.to_bits(), record.expectation.to_bits());
        prop_assert_eq!(
            back.approximation_ratio.to_bits(),
            record.approximation_ratio.to_bits()
        );
    }

    /// Instance outcomes survive the wire — every termination variant, and
    /// float payloads from raw bit patterns (subnormals, infinities, NaN
    /// included: the codec moves bits, not decimal renderings).
    #[test]
    fn outcome_encode_decode_identity(
        bits in proptest::collection::vec(0u64..u64::MAX, 2..10),
        fc in 0usize..100_000,
        gc in 0usize..10_000,
        term in 0usize..6,
    ) {
        let outcome = InstanceOutcome {
            params: bits.iter().map(|&b| f64::from_bits(b)).collect(),
            expectation: f64::from_bits(bits[0].rotate_left(17)),
            approximation_ratio: f64::from_bits(bits[1].rotate_left(31)),
            function_calls: fc,
            gradient_calls: gc,
            termination: termination_from(term),
        };
        let back = wire::decode_outcome(&wire::encode_outcome(&outcome)).expect("round trip");
        prop_assert_eq!(back.params.len(), outcome.params.len());
        for (a, b) in outcome.params.iter().zip(&back.params) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.expectation.to_bits(), outcome.expectation.to_bits());
        prop_assert_eq!(
            back.approximation_ratio.to_bits(),
            outcome.approximation_ratio.to_bits()
        );
        prop_assert_eq!(back.function_calls, outcome.function_calls);
        prop_assert_eq!(back.gradient_calls, outcome.gradient_calls);
        prop_assert_eq!(back.termination, outcome.termination);
    }

    /// Jobs survive the wire with their full weighted graph.
    #[test]
    fn job_encode_decode_identity(
        seed in 0u64..10_000,
        n in 2usize..8,
        depth in 1usize..5,
        restarts in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = generators::erdos_renyi_nonempty(n, 0.6, &mut rng);
        // Reweight some edges so weights actually travel.
        let reweighted: Vec<(usize, usize, f64)> = graph
            .edges()
            .iter()
            .map(|e| (e.u, e.v, rng.gen_range(0.25..4.0)))
            .collect();
        let mut g = graphs::Graph::new(n);
        for (u, v, w) in reweighted {
            g.add_weighted_edge(u, v, w).unwrap();
        }
        graph = g;
        let job = Job::new(graph, depth, restarts);
        let back = wire::decode_job(&wire::encode_job(&job).expect("encode")).expect("round trip");
        prop_assert_eq!(back.depth, job.depth);
        prop_assert_eq!(back.restarts, job.restarts);
        prop_assert_eq!(&back.graph, &job.graph);
    }
}

/// The acceptance scenario: a cold run writes the cache file; a warm run —
/// at one worker *and* at four — serves every depth-1 solve from it, with
/// schedule-independent hit counts and bit-identical outcomes.
#[test]
fn cold_run_writes_warm_run_hits_without_solving() {
    let path = temp_path("warm");
    std::fs::remove_file(&path).ok();
    let jobs: Vec<Job> = common::fixture_graphs(6, 5, 33)
        .into_iter()
        .map(|g| Job::new(g, 1, 2))
        .collect();
    let config = BatchConfig::default();
    let optimizer = Lbfgsb::default();

    // Cold: all classes solved here, then persisted.
    let cold = Engine::new(2);
    assert_eq!(
        persist::load_into(cold.cache(), &path, config.master_seed),
        LoadStatus::Missing
    );
    let (cold_outcomes, cold_report) = cold.run_batch(&optimizer, &jobs, &config).unwrap();
    assert!(cold_report.cache_misses > 0, "cold run must actually solve");
    let classes = cold.cache().len();
    persist::save_merge(cold.cache(), &path, config.master_seed).unwrap();

    let mut warm_hit_counts = Vec::new();
    for threads in [1, 4] {
        let warm = Engine::new(threads);
        assert_eq!(
            persist::load_into(warm.cache(), &path, config.master_seed),
            LoadStatus::Loaded(classes)
        );
        let (outcomes, report) = warm.run_batch(&optimizer, &jobs, &config).unwrap();
        assert_eq!(
            report.cache_misses, 0,
            "warm run at {threads} threads must not solve depth 1"
        );
        assert_eq!(report.cache_hits, jobs.len());
        assert_eq!(warm.cache().misses(), 0);
        warm_hit_counts.push(report.cache_hits);
        for (a, b) in cold_outcomes.iter().zip(&outcomes) {
            assert_eq!(a.params, b.params, "warm outcome must be bit-identical");
            assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
            assert_eq!(a.function_calls, b.function_calls);
        }
    }
    assert_eq!(
        warm_hit_counts[0], warm_hit_counts[1],
        "hits are schedule-independent"
    );
    std::fs::remove_file(&path).ok();
}

/// Regression for the warm-run purity bug: a cache file written by a
/// `restarts = 2` run must NOT serve a `restarts = 3` run's depth-1
/// solves. Entries are keyed on `(class, restarts)`, so the warm run
/// re-solves under its own budget, returns exactly the bits a cold run
/// would, and the merged file ends up holding both variants.
#[test]
fn warm_run_with_different_restarts_re_solves() {
    let path = temp_path("restarts");
    std::fs::remove_file(&path).ok();
    let graph = generators::cycle(5);
    let jobs_r2 = vec![Job::new(graph.clone(), 1, 2)];
    let jobs_r3 = vec![Job::new(graph, 1, 3)];
    let config = BatchConfig::default();
    let optimizer = Lbfgsb::default();

    // Run 1 (restarts = 2) persists its entry.
    let first = Engine::new(1);
    first.run_batch(&optimizer, &jobs_r2, &config).unwrap();
    persist::save_merge(first.cache(), &path, config.master_seed).unwrap();

    // Cold reference for restarts = 3 — what a warm run must reproduce.
    let (reference, _) = Engine::new(1)
        .run_batch(&optimizer, &jobs_r3, &config)
        .unwrap();

    // Run 2 (restarts = 3) warm from run 1's file: the foreign-restarts
    // entry loads but must never be served.
    let warm = Engine::new(1);
    assert_eq!(
        persist::load_into(warm.cache(), &path, config.master_seed),
        LoadStatus::Loaded(1)
    );
    let (outcomes, report) = warm.run_batch(&optimizer, &jobs_r3, &config).unwrap();
    assert_eq!(report.cache_hits, 0, "restarts=2 entry must not serve r=3");
    assert_eq!(report.cache_misses, 1);
    assert_eq!(outcomes[0].params, reference[0].params);
    assert_eq!(
        outcomes[0].expectation.to_bits(),
        reference[0].expectation.to_bits()
    );
    assert_eq!(outcomes[0].function_calls, reference[0].function_calls);

    // The merged file now carries both restart variants of the class.
    persist::save_merge(warm.cache(), &path, config.master_seed).unwrap();
    let reload = Level1Cache::new();
    assert_eq!(
        persist::load_into(&reload, &path, config.master_seed),
        LoadStatus::Loaded(2)
    );
    std::fs::remove_file(&path).ok();
}

/// Corrupt, truncated, and version/seed-stale cache files are discarded —
/// the run proceeds cold and the next save regenerates a loadable file.
#[test]
fn corrupt_or_stale_cache_file_regenerates() {
    let path = temp_path("fallback");
    let key = Level1Key::new(graph_key(&generators::cycle(5)), 2);
    let entry = InstanceOutcome {
        params: vec![0.1, 0.2],
        expectation: 1.0,
        approximation_ratio: 1.0,
        function_calls: 3,
        gradient_calls: 0,
        termination: Termination::FtolSatisfied,
    };
    let good = {
        let cache = Level1Cache::new();
        cache.insert(key.clone(), entry.clone());
        let tmp = temp_path("fallback_good");
        persist::save_merge(&cache, &tmp, 2020).unwrap();
        let text = std::fs::read_to_string(&tmp).unwrap();
        std::fs::remove_file(&tmp).ok();
        text
    };
    let cases: Vec<(&str, String)> = vec![
        (
            "binary garbage",
            "\u{1}\u{2}\u{3} not text protocol\n".into(),
        ),
        ("truncated mid-entry", good[..good.len() - 10].into()),
        (
            "stale version (pre-restarts-keyed)",
            good.replacen("QCACHE2", "QCACHE1", 1),
        ),
        ("foreign seed", good.replacen("seed=2020", "seed=999", 1)),
        ("wrong wire version", good.replace("QW1 ENTRY", "QW9 ENTRY")),
    ];
    for (what, text) in cases {
        std::fs::write(&path, text).unwrap();
        let cache = Level1Cache::new();
        let status = persist::load_into(&cache, &path, 2020);
        assert!(
            matches!(status, LoadStatus::Discarded(_)),
            "{what}: expected Discarded, got {status:?}"
        );
        assert!(cache.is_empty(), "{what}: nothing may leak into the cache");
        // Regeneration: save over the bad file, reload cleanly.
        cache.insert(key.clone(), entry.clone());
        persist::save_merge(&cache, &path, 2020).unwrap();
        let reload = Level1Cache::new();
        assert_eq!(
            persist::load_into(&reload, &path, 2020),
            LoadStatus::Loaded(1)
        );
    }
    std::fs::remove_file(&path).ok();
}

/// End-to-end serve session: two piped jobs yield two ordered outcomes and
/// a report, and a second session warmed from the first's cache file
/// re-serves the same bits without solving.
#[test]
fn serve_session_round_trips_jobs_and_reuses_the_cache_file() {
    let path = temp_path("serve");
    std::fs::remove_file(&path).ok();
    let input = "QW1 JOB 1 2 5 0-1,1-2,2-3,3-4,4-0\nQW1 JOB 1 2 5 1-3,3-0,0-4,4-2,2-1\n";
    let config = BatchConfig::default();
    let optimizer = Lbfgsb::default();

    let run_session = |warm_from: Option<&std::path::Path>| {
        let engine = Engine::new(2);
        if let Some(p) = warm_from {
            assert!(matches!(
                persist::load_into(engine.cache(), p, config.master_seed),
                LoadStatus::Loaded(_)
            ));
        }
        let mut out = Vec::new();
        let summary = engine::server::serve(
            std::io::Cursor::new(input),
            &mut out,
            &engine,
            &optimizer,
            &config,
        )
        .unwrap();
        persist::save_merge(engine.cache(), &path, config.master_seed).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    };

    let (cold_out, cold_summary) = run_session(None);
    let outcomes: Vec<&str> = cold_out
        .lines()
        .filter(|l| l.starts_with("QW1 OUTCOME"))
        .collect();
    assert_eq!(outcomes.len(), 2);
    // The two jobs are relabelings of one 5-cycle: one solve, one hit, and
    // identical outcome lines.
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(cold_summary.cache_misses, 1);
    assert_eq!(cold_summary.cache_hits, 1);

    let (warm_out, warm_summary) = run_session(Some(&path));
    assert_eq!(warm_summary.cache_misses, 0, "warm session must not solve");
    assert_eq!(warm_summary.cache_hits, 2);
    // Outcome lines are bit-identical warm or cold (the REPORT line differs
    // only in wall time and hit/miss accounting).
    let warm_outcomes: Vec<&str> = warm_out
        .lines()
        .filter(|l| l.starts_with("QW1 OUTCOME"))
        .collect();
    assert_eq!(warm_outcomes, outcomes);
    std::fs::remove_file(&path).ok();
}
