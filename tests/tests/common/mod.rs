//! Shared test utilities for the integration suites.
//!
//! Each `tests/tests/*.rs` file is its own binary; this module is included
//! with `mod common;` and deduplicates the fixture graphs, corpus
//! configurations, tempfile helpers, and bit-level corpus comparison that
//! used to be hand-rolled per suite. Not every suite uses every helper,
//! hence the file-level `dead_code` allowance.
#![allow(dead_code)]

use graphs::{generators, Graph};
use optimize::Options;
use qaoa::datagen::{DataGenConfig, ParameterDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic ensemble of non-empty Erdős–Rényi graphs (edge
/// probability 0.5) — the standard fixture for batch/corpus tests.
pub fn fixture_graphs(count: usize, nodes: usize, seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| generators::erdos_renyi_nonempty(nodes, 0.5, &mut rng))
        .collect()
}

/// A nontrivial relabeling of the 5-cycle — isomorphic to
/// `generators::cycle(5)` but with shuffled vertex labels, for cache-hit
/// and canonicalization tests.
pub fn relabeled_cycle5() -> Graph {
    Graph::from_edges(5, &[(1, 3), (3, 0), (0, 4), (4, 2), (2, 1)]).unwrap()
}

/// A test-scale corpus configuration: `count` graphs of `nodes` nodes at
/// edge probability `edge_p`, depths `1..=max_depth`, with the default
/// optimizer options and trend margin every driver uses.
pub fn tiny_datagen(
    count: usize,
    nodes: usize,
    edge_p: f64,
    max_depth: usize,
    restarts: usize,
    seed: u64,
) -> DataGenConfig {
    DataGenConfig {
        n_graphs: count,
        n_nodes: nodes,
        edge_probability: edge_p,
        max_depth,
        restarts,
        seed,
        options: Options::default(),
        trend_preference_margin: 1e-3,
    }
}

/// A per-process temp-file path for cache/corpus artifacts. Callers clean
/// up with `std::fs::remove_file(..).ok()`; the process id keeps parallel
/// test binaries from clobbering each other.
pub fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("qaoa_it_{}_{tag}", std::process::id()))
}

/// Asserts two corpora are **bit-identical**: same ensemble, same record
/// sequence, and every float field equal down to its IEEE-754 bits — the
/// equality the engine's determinism contract (serial ≡ parallel,
/// sharded ≡ unsharded, warm ≡ cold) promises.
pub fn assert_corpora_bit_identical(a: &ParameterDataset, b: &ParameterDataset, what: &str) {
    assert_eq!(a.graphs(), b.graphs(), "{what}: ensembles differ");
    assert_eq!(a.max_depth(), b.max_depth(), "{what}: max depth differs");
    assert_eq!(
        a.records().len(),
        b.records().len(),
        "{what}: record counts differ"
    );
    for (i, (ra, rb)) in a.records().iter().zip(b.records()).enumerate() {
        assert_eq!(ra.graph_id, rb.graph_id, "{what}: record {i} graph_id");
        assert_eq!(ra.depth, rb.depth, "{what}: record {i} depth");
        assert_eq!(
            ra.function_calls, rb.function_calls,
            "{what}: record {i} (graph {}, depth {}) function calls",
            ra.graph_id, ra.depth
        );
        assert_eq!(
            ra.expectation.to_bits(),
            rb.expectation.to_bits(),
            "{what}: record {i} expectation bits"
        );
        assert_eq!(
            ra.approximation_ratio.to_bits(),
            rb.approximation_ratio.to_bits(),
            "{what}: record {i} AR bits"
        );
        let float_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            float_bits(&ra.gammas),
            float_bits(&rb.gammas),
            "{what}: record {i} gammas"
        );
        assert_eq!(
            float_bits(&ra.betas),
            float_bits(&rb.betas),
            "{what}: record {i} betas"
        );
    }
}
