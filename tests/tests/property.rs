//! Property-based tests (proptest) over cross-crate invariants.

use graphs::{generators, Graph};
use proptest::prelude::*;
use qaoa::{MaxCutProblem, QaoaAnsatz};
use qsim::{gates, Circuit, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of gates preserves the state norm (unitarity).
    #[test]
    fn random_circuits_preserve_norm(
        seed in 0u64..1000,
        n_gates in 1usize..40,
        n_qubits in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut circuit = Circuit::new(n_qubits);
        for _ in 0..n_gates {
            let q = rng.gen_range(0..n_qubits);
            match rng.gen_range(0..7u8) {
                0 => { circuit.h(q); }
                1 => { circuit.x(q); }
                2 => { circuit.rx(q, rng.gen_range(-6.3..6.3)); }
                3 => { circuit.rz(q, rng.gen_range(-6.3..6.3)); }
                4 => { circuit.ry(q, rng.gen_range(-6.3..6.3)); }
                5 if n_qubits > 1 => {
                    let t = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                    circuit.cnot(q, t);
                }
                _ if n_qubits > 1 => {
                    let t = (q + 1 + rng.gen_range(0..n_qubits - 1)) % n_qubits;
                    circuit.cz(q, t);
                }
                _ => { circuit.z(q); }
            }
        }
        let state = circuit.run(StateVector::zero_state(n_qubits)).expect("valid circuit");
        prop_assert!((state.norm() - 1.0).abs() < 1e-9);
    }

    /// Cut values are invariant under global partition flip.
    #[test]
    fn cut_symmetric_under_complement(
        seed in 0u64..500,
        n in 2usize..9,
        assignment in 0usize..256,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 0.5, &mut rng);
        let mask = (1usize << n) - 1;
        let z = assignment & mask;
        prop_assert_eq!(g.cut_value(z), g.cut_value(!z & mask));
    }

    /// Cut value of any assignment never exceeds the exact MaxCut.
    #[test]
    fn maxcut_dominates_all_assignments(
        seed in 0u64..500,
        n in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 0.6, &mut rng);
        let best = graphs::MaxCut::solve(&g).value();
        for z in 0..(1usize << n) {
            prop_assert!(g.cut_value(z) <= best + 1e-12);
        }
    }

    /// QAOA expectations stay within [0, C_max] for arbitrary in-domain
    /// parameters, at any depth.
    #[test]
    fn qaoa_expectation_within_physical_bounds(
        seed in 0u64..300,
        depth in 1usize..5,
        gamma_frac in proptest::collection::vec(0.0f64..1.0, 1..5),
        beta_frac in proptest::collection::vec(0.0f64..1.0, 1..5),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_nonempty(5, 0.5, &mut rng);
        let problem = MaxCutProblem::new(&g).expect("non-empty graph");
        let ansatz = QaoaAnsatz::new(problem.clone(), depth).expect("valid depth");
        let mut params = Vec::with_capacity(2 * depth);
        for i in 0..depth {
            params.push(gamma_frac[i % gamma_frac.len()] * qaoa::GAMMA_MAX);
        }
        for i in 0..depth {
            params.push(beta_frac[i % beta_frac.len()] * qaoa::BETA_MAX);
        }
        let e = ansatz.expectation(&params).expect("valid params");
        prop_assert!(e >= -1e-9);
        prop_assert!(e <= problem.optimal_cut() + 1e-9);
    }

    /// The two ansatz execution paths agree for arbitrary parameters.
    #[test]
    fn ansatz_paths_agree(
        seed in 0u64..200,
        gamma in 0.0f64..std::f64::consts::TAU,
        beta in 0.0f64..std::f64::consts::PI,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_nonempty(4, 0.6, &mut rng);
        let ansatz = QaoaAnsatz::new(MaxCutProblem::new(&g).expect("non-empty"), 1)
            .expect("valid depth");
        let fast = ansatz.expectation(&[gamma, beta]).expect("valid params");
        let gate = ansatz.expectation_gate_level(&[gamma, beta]).expect("valid params");
        prop_assert!((fast - gate).abs() < 1e-9);
    }

    /// Single-qubit rotation gates are always unitary.
    #[test]
    fn rotations_unitary(theta in -10.0f64..10.0) {
        prop_assert!(gates::is_unitary(&gates::rx(theta), 1e-12));
        prop_assert!(gates::is_unitary(&gates::ry(theta), 1e-12));
        prop_assert!(gates::is_unitary(&gates::rz(theta), 1e-12));
        prop_assert!(gates::is_unitary(&gates::phase(theta), 1e-12));
    }

    /// Optimizers never step outside the box and never return a worse value
    /// than the starting point.
    #[test]
    fn optimizers_respect_bounds_and_monotonicity(
        x0 in proptest::collection::vec(0.0f64..1.0, 2..4),
        seed in 0u64..100,
    ) {
        let _ = seed;
        let dim = x0.len();
        let f = |x: &[f64]| x.iter().enumerate().map(|(i, v)| (v - 0.3 * i as f64).powi(2)).sum::<f64>();
        let bounds = optimize::Bounds::uniform(dim, 0.0, 1.0).expect("valid bounds");
        let start = bounds.project(&x0);
        let f0 = f(&start);
        for optimizer in optimize::all_optimizers() {
            let r = optimizer
                .minimize(&f, &start, &bounds, &optimize::Options::default())
                .expect("optimization runs");
            prop_assert!(bounds.contains(&r.x), "{} left the box", optimizer.name());
            prop_assert!(r.fx <= f0 + 1e-12, "{} worsened the objective", optimizer.name());
        }
    }

    /// Metrics invariants: MSE >= 0, R² <= 1, Pearson in [-1, 1].
    #[test]
    fn metric_invariants(
        t in proptest::collection::vec(-10.0f64..10.0, 2..20),
        noise in proptest::collection::vec(-1.0f64..1.0, 2..20),
    ) {
        let n = t.len().min(noise.len());
        let t = &t[..n];
        let p: Vec<f64> = t.iter().zip(&noise[..n]).map(|(a, b)| a + b).collect();
        prop_assert!(ml::metrics::mse(t, &p).expect("valid input") >= 0.0);
        prop_assert!(ml::metrics::r2(t, &p).expect("valid input") <= 1.0);
        let r = ml::metrics::pearson(t, &p).expect("valid input");
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    /// Graph generators produce simple graphs with consistent handshake sums.
    #[test]
    fn handshake_lemma(seed in 0u64..500, n in 2usize..10, p in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng);
        let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.n_edges());
        // Simplicity: no self-loops representable, no duplicate edges.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            prop_assert!(e.u < e.v);
            prop_assert!(seen.insert((e.u, e.v)));
        }
    }
}

#[test]
fn graph_from_edges_matches_incremental_construction() {
    let pairs = [(0usize, 1usize), (1, 2), (2, 3), (0, 3)];
    let bulk = Graph::from_edges(4, &pairs).expect("valid edges");
    let mut incremental = Graph::new(4);
    for (u, v) in pairs {
        incremental.add_edge(u, v).expect("valid edge");
    }
    assert_eq!(bulk, incremental);
}
