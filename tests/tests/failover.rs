//! Failover and streaming-merge tests for the shard coordinator: injected
//! worker death and stalls must not cost a byte of parity (merged records
//! and the persisted cache file stay identical to the unsharded run), and
//! the coordinator's buffering must stay bounded by the dispatch window,
//! never by corpus size.

mod common;

use std::sync::Arc;
use std::time::Duration;

use engine::shard::{self, ShardPlan, StreamOptions};
use engine::{persist, Engine, KillAfter, Level1Cache, LoopbackTransport, StallAfter};
use proptest::prelude::*;
use qaoa::datagen::DataGenConfig;

/// The suite's corpus spec — small enough that one case solves in
/// milliseconds, rich enough (2 depths, 2 restarts) to exercise both the
/// depth-1 cache path and the trend-seeded depth-2 path.
fn spec(n_graphs: usize) -> DataGenConfig {
    common::tiny_datagen(n_graphs, 4, 0.6, 2, 2, 77)
}

fn reference(config: &DataGenConfig) -> qaoa::datagen::ParameterDataset {
    let (dataset, _) = engine::corpus::generate(config, &Engine::new(1)).expect("reference corpus");
    dataset
}

/// A partition of `0..n` from arbitrary cut points.
fn plan_from_cuts(n: usize, mut cuts: Vec<usize>) -> ShardPlan {
    cuts.sort_unstable();
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut cursor = 0;
    for cut in cuts {
        ranges.push(cursor..cut);
        cursor = cut;
    }
    ranges.push(cursor..n);
    ShardPlan::from_ranges(n, ranges).expect("cut construction is always valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The failover headline: kill an arbitrary worker after an arbitrary
    /// number of delivered lines, over an arbitrary partition — the
    /// surviving worker re-runs whatever was lost and the merged corpus is
    /// still bit-identical to the unsharded run.
    #[test]
    fn killed_worker_mid_range_costs_no_parity(
        (n, cuts, victim, after) in (2usize..6).prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0usize..=n, 0..3),
                0usize..2,
                0usize..5,
            )
        })
    ) {
        let config = spec(n);
        let plan = plan_from_cuts(n, cuts);
        let unsharded = reference(&config);
        let mut transport = KillAfter::new(LoopbackTransport::new(2, 2), victim, after);
        let (merged, report) = shard::run_wire(&config, &plan, &mut transport)
            .expect("failover run must complete on the survivor");
        prop_assert!(report.lost_workers <= 1);
        common::assert_corpora_bit_identical(
            &unsharded,
            &merged,
            &format!("kill worker {victim} after {after} lines, {} shards", plan.shards()),
        );
    }
}

#[test]
fn killed_worker_report_shows_the_retask() {
    // Deterministic companion to the property: kill worker 0 after its
    // first delivered line; the run completes and says what happened.
    let config = spec(5);
    let plan = ShardPlan::split_even(config.n_graphs, 3);
    let unsharded = reference(&config);
    let mut transport = KillAfter::new(LoopbackTransport::new(2, 2), 0, 1);
    let (merged, report) = shard::run_wire(&config, &plan, &mut transport).expect("failover run");
    assert_eq!(report.lost_workers, 1, "the victim must be declared dead");
    assert_eq!(report.retasked, 1, "its range must move to the survivor");
    assert!(
        report.per_shard.iter().any(|s| s.attempts > 1),
        "some range must record a second attempt"
    );
    assert!(report.summary().contains("lost 1 worker"));
    common::assert_corpora_bit_identical(&unsharded, &merged, "kill-one-worker run");
}

#[test]
fn stalled_worker_times_out_and_is_retasked() {
    // The timeout path: the victim delivers one line and then goes silent
    // (the worker is alive but the transport swallows everything). The
    // coordinator must declare it dead after the configured quiet period
    // and finish on the survivor, bit-identically.
    let config = spec(4);
    let plan = ShardPlan::split_even(config.n_graphs, 2);
    let unsharded = reference(&config);
    let mut transport = StallAfter::new(LoopbackTransport::new(2, 2), 1, 1);
    let options = StreamOptions {
        timeout: Duration::from_millis(300),
        ..StreamOptions::default()
    };
    let (merged, report) =
        shard::run_wire_with(&config, &plan, &mut transport, &options).expect("timeout failover");
    assert_eq!(report.lost_workers, 1);
    assert_eq!(report.retasked, 1);
    common::assert_corpora_bit_identical(&unsharded, &merged, "stalled-worker run");
}

#[test]
fn cache_file_survives_a_kill_byte_identically() {
    // The second half of the parity guarantee under failover: the cache
    // file persisted from a shared coordinator cache after a
    // kill-one-worker run equals the unsharded run's file byte-for-byte.
    let config = spec(6);
    let unsharded_path = common::temp_path("failover_cache_unsharded");
    let killed_path = common::temp_path("failover_cache_killed");
    std::fs::remove_file(&unsharded_path).ok();
    std::fs::remove_file(&killed_path).ok();

    let engine = Engine::new(2);
    engine::corpus::generate(&config, &engine).expect("unsharded corpus");
    persist::save_merge(engine.cache(), &unsharded_path, config.seed).unwrap();

    let shared = Arc::new(Level1Cache::new());
    let plan = ShardPlan::split_even(config.n_graphs, 3);
    let inner = LoopbackTransport::with_cache(2, 2, config.seed, Some(Arc::clone(&shared)));
    let mut transport = KillAfter::new(inner, 0, 2);
    let (_, report) = shard::run_wire(&config, &plan, &mut transport).expect("failover run");
    assert_eq!(report.lost_workers, 1);
    persist::save_merge(&shared, &killed_path, config.seed).unwrap();

    let unsharded_bytes = std::fs::read(&unsharded_path).unwrap();
    let killed_bytes = std::fs::read(&killed_path).unwrap();
    assert!(!unsharded_bytes.is_empty());
    assert_eq!(
        unsharded_bytes, killed_bytes,
        "cache file after a worker kill must be byte-identical to the unsharded one"
    );
    std::fs::remove_file(&unsharded_path).ok();
    std::fs::remove_file(&killed_path).ok();
}

#[test]
fn peak_buffering_is_bounded_by_the_window_not_the_corpus() {
    // The streaming-merge memory bound (acceptance criterion): records may
    // be buffered only for in-flight ranges past the emit frontier, and
    // dispatch is throttled to `window_per_worker × workers` ranges beyond
    // it. With every range a single graph, the bound is a small constant
    // while the corpus itself is many times larger — and it does not grow
    // when the corpus does.
    for n in [8usize, 16] {
        let config = spec(n);
        let plan = ShardPlan::split_even(config.n_graphs, n); // 1 graph per range
        let mut transport = LoopbackTransport::new(2, 1);
        let options = StreamOptions {
            window_per_worker: 1,
            ..StreamOptions::default()
        };
        let unsharded = reference(&config);
        let mut streamed = Vec::new();
        let report = shard::run_streaming(&config, &plan, &mut transport, &options, &mut |r| {
            streamed.push(r);
            Ok(())
        })
        .expect("streaming run");
        let cells_per_range = config.max_depth; // 1 graph per range
        let window_ranges = 2; // window_per_worker (1) × workers (2)
        let bound = window_ranges * cells_per_range;
        let total_cells = n * config.max_depth;
        assert!(
            report.peak_buffered_records <= bound,
            "n={n}: peak {} exceeds the window bound {bound}",
            report.peak_buffered_records
        );
        assert!(
            bound < total_cells,
            "the bound must be smaller than the corpus for the assertion to mean anything"
        );
        assert_eq!(streamed.len(), total_cells);
        for (got, want) in streamed.iter().zip(unsharded.records()) {
            assert_eq!(got, want, "streamed record differs from unsharded");
        }
    }
}

#[test]
fn losing_every_worker_is_an_error_not_a_hang() {
    let config = spec(3);
    let plan = ShardPlan::split_even(config.n_graphs, 2);
    // Both workers are victims: kill each on its first receive.
    let inner = KillAfter::new(LoopbackTransport::new(2, 1), 0, 0);
    let mut transport = KillAfter::new(inner, 1, 0);
    match shard::run_wire(&config, &plan, &mut transport) {
        Err(engine::ShardError::Transport(message)) => {
            assert!(message.contains("all 2 workers lost"), "got: {message}");
        }
        other => panic!("expected the fleet lost, got {other:?}"),
    }
}
