//! Integration tests for the sharded corpus coordinator: the bit-parity
//! guarantee (any valid partition, any thread count, local or over the
//! wire, merges to the unsharded corpus bit-for-bit), merged cache-file
//! identity, and the coordinator's protocol validation.

mod common;

use engine::shard::{self, ShardPlan};
use engine::{persist, Engine, Level1Cache};
use proptest::prelude::*;
use qaoa::datagen::DataGenConfig;

/// The suite's corpus spec: small enough that one case solves in
/// milliseconds, rich enough (2 depths, 2 restarts) to exercise the
/// depth-1 cache path and the trend-seeded depth-2 path.
fn spec(n_graphs: usize) -> DataGenConfig {
    common::tiny_datagen(n_graphs, 4, 0.6, 2, 2, 77)
}

/// The unsharded reference everything must reproduce bit-for-bit.
fn reference(config: &DataGenConfig) -> qaoa::datagen::ParameterDataset {
    let (dataset, _) = engine::corpus::generate(config, &Engine::new(1)).expect("reference corpus");
    dataset
}

/// Builds a partition of `0..n` from arbitrary cut points (duplicates and
/// boundary cuts yield empty ranges; adjacent cuts yield singletons).
fn plan_from_cuts(n: usize, mut cuts: Vec<usize>) -> ShardPlan {
    cuts.sort_unstable();
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut cursor = 0;
    for cut in cuts {
        ranges.push(cursor..cut);
        cursor = cut;
    }
    ranges.push(cursor..n);
    ShardPlan::from_ranges(n, ranges).expect("cut construction is always valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The ISSUE's headline property: **any** valid partition of `0..n`
    /// into contiguous ranges — empty and singleton ranges included —
    /// merges to a corpus bit-identical to the unsharded run, at 1 and at
    /// 4 threads per shard.
    #[test]
    fn any_partition_merges_bit_identically(
        (n, cuts) in (1usize..6).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(0usize..=n, 0..4))
        })
    ) {
        let config = spec(n);
        let plan = plan_from_cuts(n, cuts);
        let unsharded = reference(&config);
        for threads in [1usize, 4] {
            let (sharded, report) =
                shard::run_local(&config, &plan, threads, &Level1Cache::new())
                    .expect("sharded run");
            prop_assert_eq!(report.per_shard.len(), plan.shards());
            prop_assert_eq!(report.cells(), n * config.max_depth);
            common::assert_corpora_bit_identical(
                &unsharded,
                &sharded,
                &format!("{} shards at {threads} threads", plan.shards()),
            );
        }
    }
}

#[test]
fn shard_counts_1_2_3_at_1_and_4_threads_match_unsharded() {
    // The acceptance grid, pinned explicitly (the property test above
    // samples arbitrary partitions; this is the even-split matrix the CI
    // step mirrors).
    let config = spec(5);
    let unsharded = reference(&config);
    for shards in [1usize, 2, 3] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        for threads in [1usize, 4] {
            let (sharded, _) = shard::run_local(&config, &plan, threads, &Level1Cache::new())
                .expect("sharded run");
            common::assert_corpora_bit_identical(
                &unsharded,
                &sharded,
                &format!("{shards} shards x {threads} threads"),
            );
        }
    }
}

#[test]
fn merged_cache_file_is_byte_identical_to_unsharded() {
    // Same master seed, same flags: the cache file a 3-shard run persists
    // must equal the unsharded run's byte-for-byte.
    let config = spec(6);
    let unsharded_path = common::temp_path("shard_cache_unsharded");
    let sharded_path = common::temp_path("shard_cache_sharded");
    std::fs::remove_file(&unsharded_path).ok();
    std::fs::remove_file(&sharded_path).ok();

    let engine = Engine::new(2);
    engine::corpus::generate(&config, &engine).expect("unsharded corpus");
    persist::save_merge(engine.cache(), &unsharded_path, config.seed).unwrap();

    let cache = Level1Cache::new();
    let plan = ShardPlan::split_even(config.n_graphs, 3);
    shard::run_local(&config, &plan, 4, &cache).expect("sharded corpus");
    persist::save_merge(&cache, &sharded_path, config.seed).unwrap();

    let unsharded_bytes = std::fs::read(&unsharded_path).unwrap();
    let sharded_bytes = std::fs::read(&sharded_path).unwrap();
    assert!(
        !unsharded_bytes.is_empty(),
        "cache file must hold the run's entries"
    );
    assert_eq!(
        unsharded_bytes, sharded_bytes,
        "merged shard cache file must be byte-identical to the unsharded one"
    );
    std::fs::remove_file(&unsharded_path).ok();
    std::fs::remove_file(&sharded_path).ok();
}

#[test]
fn warm_sharded_run_serves_depth1_from_the_cache_file() {
    // A cache file written by an unsharded run pre-warms every shard: the
    // warm sharded run performs zero depth-1 solves and still reproduces
    // the exact corpus.
    let config = spec(5);
    let path = common::temp_path("shard_warm");
    std::fs::remove_file(&path).ok();

    let engine = Engine::new(2);
    let (unsharded, _) = engine::corpus::generate(&config, &engine).expect("cold corpus");
    persist::save_merge(engine.cache(), &path, config.seed).unwrap();

    let cache = Level1Cache::new();
    assert!(matches!(
        persist::load_into(&cache, &path, config.seed),
        persist::LoadStatus::Loaded(_)
    ));
    let solves_before = cache.misses();
    let plan = ShardPlan::split_even(config.n_graphs, 2);
    let (warm, report) = shard::run_local(&config, &plan, 2, &cache).expect("warm sharded run");
    common::assert_corpora_bit_identical(&unsharded, &warm, "warm sharded run");
    assert_eq!(
        report.cache_hits(),
        config.n_graphs,
        "every depth-1 cell served from the file"
    );
    assert_eq!(cache.misses(), solves_before, "no new depth-1 solves");
    std::fs::remove_file(&path).ok();
}

#[test]
fn wire_path_matches_unsharded_through_a_loopback_server() {
    // run_wire drives in-process `server::serve` workers — one fresh
    // engine per shard, exactly like piping SHARD/RANGE scripts to
    // separate qaoa-serve processes — and must still merge bit-identically.
    let config = spec(5);
    let unsharded = reference(&config);
    for shards in [1usize, 2, 3] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        let mut transport = shard::loopback_transport(2);
        let (merged, report) =
            shard::run_wire(&config, &plan, &mut transport).expect("wire-sharded run");
        assert_eq!(report.cells(), config.n_graphs * config.max_depth);
        common::assert_corpora_bit_identical(
            &unsharded,
            &merged,
            &format!("wire path, {shards} shards"),
        );
    }
}

#[test]
fn coordinator_rejects_protocol_violations() {
    let config = spec(3);
    let plan = ShardPlan::split_even(config.n_graphs, 1);
    let fails = |mutate: &dyn Fn(String) -> String, what: &str| {
        let mut transport = shard::loopback_transport(1);
        let mut mutated = move |shard: usize, script: &str| transport(shard, script).map(mutate);
        let err = shard::run_wire(&config, &plan, &mut mutated)
            .err()
            .unwrap_or_else(|| panic!("{what}: coordinator must reject"));
        assert!(
            matches!(err, engine::ShardError::Protocol { .. }),
            "{what}: got {err}"
        );
    };
    // A worker ERR propagates.
    fails(
        &|_| "QW1 ERR solver caught fire\n".into(),
        "in-band worker ERR",
    );
    // Duplicate DONE.
    fails(
        &|response| {
            let done = response
                .lines()
                .find(|l| l.starts_with("QW1 DONE"))
                .expect("response has a DONE")
                .to_string();
            format!("{response}{done}\n")
        },
        "duplicate DONE",
    );
    // DONE for the wrong range.
    fails(
        &|response| response.replace("QW1 DONE 0 3", "QW1 DONE 0 2"),
        "mismatched DONE",
    );
    // Missing DONE.
    fails(
        &|response| {
            response
                .lines()
                .filter(|l| !l.starts_with("QW1 DONE"))
                .map(|l| format!("{l}\n"))
                .collect()
        },
        "missing DONE",
    );
    // A dropped record (count mismatch / out-of-order tail).
    fails(
        &|response| {
            let mut dropped_one = false;
            response
                .lines()
                .filter(|l| {
                    if !dropped_one && l.starts_with("QW1 RECORD") {
                        dropped_one = true;
                        return false;
                    }
                    true
                })
                .map(|l| format!("{l}\n"))
                .collect()
        },
        "dropped record",
    );
    // Reordered records violate the graph-major, depth-minor contract.
    fails(
        &|response| {
            let mut lines: Vec<&str> = response.lines().collect();
            let first = lines
                .iter()
                .position(|l| l.starts_with("QW1 RECORD"))
                .expect("records exist");
            lines.swap(first, first + 1);
            lines.iter().map(|l| format!("{l}\n")).collect()
        },
        "reordered records",
    );
}

#[test]
fn transport_failures_surface_with_the_shard_index() {
    let config = spec(4);
    let plan = ShardPlan::split_even(config.n_graphs, 2);
    let mut inner = shard::loopback_transport(1);
    let mut flaky = |shard: usize, script: &str| {
        if shard == 1 {
            Err("connection reset".to_string())
        } else {
            inner(shard, script)
        }
    };
    match shard::run_wire(&config, &plan, &mut flaky) {
        Err(engine::ShardError::Protocol { shard, message }) => {
            assert_eq!(shard, 1);
            assert!(message.contains("connection reset"));
        }
        other => panic!("expected a shard-1 protocol error, got {other:?}"),
    }
}
