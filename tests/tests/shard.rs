//! Integration tests for the sharded corpus coordinator: the bit-parity
//! guarantee (any valid partition, any thread count, local or over the
//! wire, merges to the unsharded corpus bit-for-bit), merged cache-file
//! identity, and the coordinator's protocol validation.

mod common;

use std::time::Duration;

use engine::shard::{self, ShardPlan, StreamOptions};
use engine::{persist, Engine, Level1Cache, LoopbackTransport, ShardTransport, TransportError};
use proptest::prelude::*;
use qaoa::datagen::DataGenConfig;

/// The suite's corpus spec: small enough that one case solves in
/// milliseconds, rich enough (2 depths, 2 restarts) to exercise the
/// depth-1 cache path and the trend-seeded depth-2 path.
fn spec(n_graphs: usize) -> DataGenConfig {
    common::tiny_datagen(n_graphs, 4, 0.6, 2, 2, 77)
}

/// The unsharded reference everything must reproduce bit-for-bit.
fn reference(config: &DataGenConfig) -> qaoa::datagen::ParameterDataset {
    let (dataset, _) = engine::corpus::generate(config, &Engine::new(1)).expect("reference corpus");
    dataset
}

/// Builds a partition of `0..n` from arbitrary cut points (duplicates and
/// boundary cuts yield empty ranges; adjacent cuts yield singletons).
fn plan_from_cuts(n: usize, mut cuts: Vec<usize>) -> ShardPlan {
    cuts.sort_unstable();
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut cursor = 0;
    for cut in cuts {
        ranges.push(cursor..cut);
        cursor = cut;
    }
    ranges.push(cursor..n);
    ShardPlan::from_ranges(n, ranges).expect("cut construction is always valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The ISSUE's headline property: **any** valid partition of `0..n`
    /// into contiguous ranges — empty and singleton ranges included —
    /// merges to a corpus bit-identical to the unsharded run, at 1 and at
    /// 4 threads per shard.
    #[test]
    fn any_partition_merges_bit_identically(
        (n, cuts) in (1usize..6).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec(0usize..=n, 0..4))
        })
    ) {
        let config = spec(n);
        let plan = plan_from_cuts(n, cuts);
        let unsharded = reference(&config);
        for threads in [1usize, 4] {
            let (sharded, report) =
                shard::run_local(&config, &plan, threads, &Level1Cache::new())
                    .expect("sharded run");
            prop_assert_eq!(report.per_shard.len(), plan.shards());
            prop_assert_eq!(report.cells(), n * config.max_depth);
            common::assert_corpora_bit_identical(
                &unsharded,
                &sharded,
                &format!("{} shards at {threads} threads", plan.shards()),
            );
        }
    }
}

#[test]
fn shard_counts_1_2_3_at_1_and_4_threads_match_unsharded() {
    // The acceptance grid, pinned explicitly (the property test above
    // samples arbitrary partitions; this is the even-split matrix the CI
    // step mirrors).
    let config = spec(5);
    let unsharded = reference(&config);
    for shards in [1usize, 2, 3] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        for threads in [1usize, 4] {
            let (sharded, _) = shard::run_local(&config, &plan, threads, &Level1Cache::new())
                .expect("sharded run");
            common::assert_corpora_bit_identical(
                &unsharded,
                &sharded,
                &format!("{shards} shards x {threads} threads"),
            );
        }
    }
}

#[test]
fn merged_cache_file_is_byte_identical_to_unsharded() {
    // Same master seed, same flags: the cache file a 3-shard run persists
    // must equal the unsharded run's byte-for-byte.
    let config = spec(6);
    let unsharded_path = common::temp_path("shard_cache_unsharded");
    let sharded_path = common::temp_path("shard_cache_sharded");
    std::fs::remove_file(&unsharded_path).ok();
    std::fs::remove_file(&sharded_path).ok();

    let engine = Engine::new(2);
    engine::corpus::generate(&config, &engine).expect("unsharded corpus");
    persist::save_merge(engine.cache(), &unsharded_path, config.seed).unwrap();

    let cache = Level1Cache::new();
    let plan = ShardPlan::split_even(config.n_graphs, 3);
    shard::run_local(&config, &plan, 4, &cache).expect("sharded corpus");
    persist::save_merge(&cache, &sharded_path, config.seed).unwrap();

    let unsharded_bytes = std::fs::read(&unsharded_path).unwrap();
    let sharded_bytes = std::fs::read(&sharded_path).unwrap();
    assert!(
        !unsharded_bytes.is_empty(),
        "cache file must hold the run's entries"
    );
    assert_eq!(
        unsharded_bytes, sharded_bytes,
        "merged shard cache file must be byte-identical to the unsharded one"
    );
    std::fs::remove_file(&unsharded_path).ok();
    std::fs::remove_file(&sharded_path).ok();
}

#[test]
fn warm_sharded_run_serves_depth1_from_the_cache_file() {
    // A cache file written by an unsharded run pre-warms every shard: the
    // warm sharded run performs zero depth-1 solves and still reproduces
    // the exact corpus.
    let config = spec(5);
    let path = common::temp_path("shard_warm");
    std::fs::remove_file(&path).ok();

    let engine = Engine::new(2);
    let (unsharded, _) = engine::corpus::generate(&config, &engine).expect("cold corpus");
    persist::save_merge(engine.cache(), &path, config.seed).unwrap();

    let cache = Level1Cache::new();
    assert!(matches!(
        persist::load_into(&cache, &path, config.seed),
        persist::LoadStatus::Loaded(_)
    ));
    let solves_before = cache.misses();
    let plan = ShardPlan::split_even(config.n_graphs, 2);
    let (warm, report) = shard::run_local(&config, &plan, 2, &cache).expect("warm sharded run");
    common::assert_corpora_bit_identical(&unsharded, &warm, "warm sharded run");
    assert_eq!(
        report.cache_hits(),
        config.n_graphs,
        "every depth-1 cell served from the file"
    );
    assert_eq!(cache.misses(), solves_before, "no new depth-1 solves");
    std::fs::remove_file(&path).ok();
}

#[test]
fn wire_path_matches_unsharded_through_a_loopback_server() {
    // run_wire drives in-process `server::serve` workers over the
    // streaming transport — behaviorally identical to spawned qaoa-serve
    // processes — and must still merge bit-identically, whether the
    // worker fleet is smaller, equal, or larger than the shard count.
    let config = spec(5);
    let unsharded = reference(&config);
    for shards in [1usize, 2, 3] {
        let plan = ShardPlan::split_even(config.n_graphs, shards);
        let mut transport = LoopbackTransport::new(2, 2);
        let (merged, report) =
            shard::run_wire(&config, &plan, &mut transport).expect("wire-sharded run");
        assert_eq!(report.cells(), config.n_graphs * config.max_depth);
        assert_eq!(report.lost_workers, 0);
        assert_eq!(report.retasked, 0);
        common::assert_corpora_bit_identical(
            &unsharded,
            &merged,
            &format!("wire path, {shards} shards"),
        );
    }
}

/// A test transport that rewrites each line a worker sends through a hook:
/// the hook maps one received line to zero or more lines delivered to the
/// coordinator, which is how the suite forges protocol violations (forged
/// ERRs, duplicated or rewritten DONEs, dropped and reordered records) on
/// top of an honest loopback worker.
struct MutateLines<T: ShardTransport, F: FnMut(usize, String) -> Vec<String>> {
    inner: T,
    hook: F,
    queues: Vec<std::collections::VecDeque<String>>,
}

impl<T: ShardTransport, F: FnMut(usize, String) -> Vec<String>> MutateLines<T, F> {
    fn new(inner: T, hook: F) -> Self {
        let queues = (0..inner.workers()).map(|_| Default::default()).collect();
        Self {
            inner,
            hook,
            queues,
        }
    }
}

impl<T: ShardTransport, F: FnMut(usize, String) -> Vec<String>> ShardTransport
    for MutateLines<T, F>
{
    fn workers(&self) -> usize {
        self.inner.workers()
    }

    fn send_line(&mut self, worker: usize, line: &str) -> Result<(), TransportError> {
        self.inner.send_line(worker, line)
    }

    fn recv_line(&mut self, worker: usize, wait: Duration) -> Result<String, TransportError> {
        loop {
            if let Some(line) = self.queues[worker].pop_front() {
                return Ok(line);
            }
            let line = self.inner.recv_line(worker, wait)?;
            self.queues[worker].extend((self.hook)(worker, line));
        }
    }

    fn kill(&mut self, worker: usize) {
        self.inner.kill(worker);
    }

    fn close(&mut self, worker: usize) {
        self.inner.close(worker);
    }
}

#[test]
fn coordinator_rejects_protocol_violations() {
    // Protocol violations — a worker answering *wrong*, not merely dying —
    // must hard-fail, never be re-tasked: a worker that disagrees with the
    // contract would disagree again, and parity is already forfeit.
    let config = spec(3);
    let plan = ShardPlan::split_even(config.n_graphs, 1);
    let fails = |hook: Box<dyn FnMut(usize, String) -> Vec<String>>, what: &str| {
        let mut transport = MutateLines::new(LoopbackTransport::new(1, 1), hook);
        let err = shard::run_wire(&config, &plan, &mut transport)
            .err()
            .unwrap_or_else(|| panic!("{what}: coordinator must reject"));
        assert!(
            matches!(
                err,
                engine::ShardError::Protocol { .. } | engine::ShardError::Transport(_)
            ),
            "{what}: got {err}"
        );
    };
    // A worker ERR propagates.
    fails(
        Box::new(|_, line| {
            if line.starts_with("QW1 RECORD") {
                vec!["QW1 ERR solver caught fire".to_string()]
            } else {
                vec![line]
            }
        }),
        "in-band worker ERR",
    );
    // Duplicate DONE: the stray second marker is caught by the
    // post-completion drain check.
    fails(
        Box::new(|_, line| {
            if line.starts_with("QW1 DONE") {
                vec![line.clone(), line]
            } else {
                vec![line]
            }
        }),
        "duplicate DONE",
    );
    // DONE for the wrong range.
    fails(
        Box::new(|_, line| vec![line.replace("QW1 DONE 0 3", "QW1 DONE 0 2")]),
        "mismatched DONE",
    );
    // A dropped record (count mismatch / out-of-order tail).
    fails(
        Box::new({
            let mut dropped_one = false;
            move |_, line| {
                if !dropped_one && line.starts_with("QW1 RECORD") {
                    dropped_one = true;
                    vec![]
                } else {
                    vec![line]
                }
            }
        }),
        "dropped record",
    );
    // Reordered records violate the graph-major, depth-minor contract.
    fails(
        Box::new({
            let mut held: Option<String> = None;
            let mut swapped = false;
            move |_, line| {
                if swapped || !line.starts_with("QW1 RECORD") {
                    return vec![line];
                }
                match held.take() {
                    None => {
                        held = Some(line);
                        vec![]
                    }
                    Some(first) => {
                        swapped = true;
                        vec![line, first]
                    }
                }
            }
        }),
        "reordered records",
    );
}

#[test]
fn swallowed_done_times_out_and_exhausts_the_fleet() {
    // A worker that streams its records but never a DONE is
    // indistinguishable from a stalled worker: the coordinator times it
    // out and re-tasks. With a single worker there is no survivor, so the
    // run must report the fleet lost — not hang, not accept the range.
    let config = spec(3);
    let plan = ShardPlan::split_even(config.n_graphs, 1);
    let hook = |_: usize, line: String| {
        if line.starts_with("QW1 DONE") {
            vec![]
        } else {
            vec![line]
        }
    };
    let mut transport = MutateLines::new(LoopbackTransport::new(1, 1), hook);
    let options = StreamOptions {
        timeout: Duration::from_millis(300),
        ..StreamOptions::default()
    };
    match shard::run_wire_with(&config, &plan, &mut transport, &options) {
        Err(engine::ShardError::Transport(message)) => {
            assert!(message.contains("all 1 workers lost"), "got: {message}");
        }
        other => panic!("expected the fleet lost, got {other:?}"),
    }
}
