//! Integration tests for the parallel batch-execution engine: the
//! determinism contract (1 worker ≡ N workers, bit-for-bit), the
//! isomorphism cache, and parity between the serial and engine-parallel
//! pipelines.

mod common;

use common::{fixture_graphs, relabeled_cycle5, tiny_datagen};
use engine::{BatchConfig, Engine, Job, Pool};
use graphs::{generators, Graph};
use ml::ModelKind;
use optimize::Lbfgsb;
use qaoa::evaluation::{self, EvaluationConfig};
use qaoa::ParameterPredictor;

#[test]
fn batch_16_graphs_identical_across_worker_counts() {
    // The ISSUE's headline contract: a 16-graph batch with 1 worker and
    // with N workers produces identical outcomes under a fixed master seed.
    let jobs: Vec<Job> = fixture_graphs(16, 6, 2024)
        .into_iter()
        .enumerate()
        .map(|(i, g)| Job::new(g, 1 + i % 3, 2))
        .collect();
    let config = BatchConfig {
        master_seed: 42,
        ..BatchConfig::default()
    };
    let optimizer = Lbfgsb::default();
    let (reference, _) = Engine::new(1)
        .run_batch(&optimizer, &jobs, &config)
        .expect("serial batch");
    for workers in [2, 4, 8] {
        let (outcomes, report) = Engine::new(workers)
            .run_batch(&optimizer, &jobs, &config)
            .expect("parallel batch");
        assert_eq!(outcomes.len(), reference.len());
        for (i, (a, b)) in reference.iter().zip(&outcomes).enumerate() {
            assert_eq!(
                a.params, b.params,
                "job {i} params differ at {workers} workers"
            );
            assert_eq!(
                a.expectation.to_bits(),
                b.expectation.to_bits(),
                "job {i} expectation differs at {workers} workers"
            );
            assert_eq!(a.function_calls, b.function_calls, "job {i} FC differ");
            assert_eq!(a.termination, b.termination, "job {i} termination differs");
        }
        assert_eq!(report.jobs.len(), 16);
        assert!(report.total_function_calls > 0);
    }
}

#[test]
fn depth1_cache_hits_for_isomorphic_graphs() {
    // Shuffled relabelings of one 6-cycle: one miss, then all hits, and
    // every outcome identical.
    let base = generators::cycle(6);
    let relabelings: Vec<Graph> = vec![
        base.clone(),
        Graph::from_edges(6, &[(3, 5), (5, 1), (1, 0), (0, 4), (4, 2), (2, 3)]).unwrap(),
        Graph::from_edges(6, &[(2, 0), (0, 5), (5, 3), (3, 1), (1, 4), (4, 2)]).unwrap(),
    ];
    let jobs: Vec<Job> = relabelings.into_iter().map(|g| Job::new(g, 1, 3)).collect();
    let eng = Engine::new(4);
    let (outcomes, report) = eng
        .run_batch(&Lbfgsb::default(), &jobs, &BatchConfig::default())
        .expect("batch");
    assert_eq!(report.cache_hits + report.cache_misses, 3);
    assert_eq!(eng.cache().len(), 1, "all three graphs share one class");
    assert!(eng.cache().hits() >= 2);
    for pair in outcomes.windows(2) {
        assert_eq!(pair[0].params, pair[1].params);
        assert_eq!(pair[0].expectation.to_bits(), pair[1].expectation.to_bits());
    }
}

#[test]
fn corpus_generation_identical_across_worker_counts() {
    let config = tiny_datagen(10, 5, 0.5, 2, 2, 7);
    let (serial, serial_report) =
        engine::corpus::generate(&config, &Engine::new(1)).expect("serial corpus");
    let (parallel, parallel_report) =
        engine::corpus::generate(&config, &Engine::new(4)).expect("parallel corpus");
    assert_eq!(serial, parallel, "corpus differs across worker counts");
    assert_eq!(serial_report.cells, 20);
    assert_eq!(parallel_report.threads, 4);
    // Single-flight misses make the hit/miss *counts* — not just the cached
    // values — schedule-independent.
    assert_eq!(serial_report.cache_hits, parallel_report.cache_hits);
}

#[test]
fn corpus_cache_reuses_isomorphic_level1_solves() {
    // An ensemble with known isomorphic duplicates: serial engine order
    // guarantees the later relabelings hit the cache.
    let graphs = vec![
        generators::cycle(5),
        relabeled_cycle5(),
        generators::path(5),
        Graph::from_edges(5, &[(2, 0), (0, 3), (3, 1), (1, 4)]).unwrap(),
    ];
    let config = tiny_datagen(graphs.len(), 5, 0.5, 2, 2, 9);
    let eng = Engine::new(1);
    let (ds, report) = engine::corpus::from_graphs(graphs, &config, &eng).expect("corpus");
    assert_eq!(report.cache_hits, 2, "both relabelings hit their class");
    assert_eq!(eng.cache().len(), 2, "two distinct classes cached");
    // Isomorphic graphs share identical depth-1 records.
    let c5 = ds.record(0, 1).unwrap();
    let c5_relabeled = ds.record(1, 1).unwrap();
    assert_eq!(c5.gammas, c5_relabeled.gammas);
    assert_eq!(c5.betas, c5_relabeled.betas);
    assert_eq!(c5.function_calls, c5_relabeled.function_calls);
}

#[test]
fn corpus_records_have_expected_shape() {
    let config = tiny_datagen(4, 5, 0.6, 3, 2, 3);
    let (ds, report) = engine::corpus::generate(&config, &Engine::new(2)).expect("corpus");
    assert_eq!(ds.graphs().len(), 4);
    assert_eq!(ds.records().len(), 12);
    assert_eq!(ds.max_depth(), 3);
    for r in ds.records() {
        assert_eq!(r.gammas.len(), r.depth);
        assert_eq!(r.betas.len(), r.depth);
        assert!(r.function_calls > 0);
        assert!(r.approximation_ratio > 0.4 && r.approximation_ratio <= 1.0 + 1e-9);
    }
    assert!(report.function_calls > 0);
    assert!(report.summary().contains("4 graphs"));
}

#[test]
fn parallel_compare_matches_serial_compare() {
    // Train a tiny predictor, then sweep the same cells serially and on the
    // engine: rows must agree exactly.
    let config = tiny_datagen(6, 5, 0.6, 2, 2, 91);
    let (ds, _) = engine::corpus::generate(&config, &Engine::new(2)).expect("corpus");
    let (train, test) = ds.split_by_graph(0.5);
    let predictor = ParameterPredictor::train(ModelKind::Linear, &train).expect("training");
    let optimizers: Vec<Box<dyn optimize::Optimizer + Send + Sync>> =
        vec![Box::new(Lbfgsb::default())];
    let eval = EvaluationConfig {
        depths: vec![2],
        naive_starts: 2,
        level1_starts: 1,
        options: Default::default(),
        seed: 5,
        scenario: qaoa::Scenario::Exact,
    };
    let serial =
        evaluation::compare(test.graphs(), &optimizers, &predictor, &eval).expect("serial");
    let parallel =
        engine::compare::compare(test.graphs(), &optimizers, &predictor, &eval, &Pool::new(4))
            .expect("parallel");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a, b, "parallel sweep row differs from serial");
    }
}

#[test]
fn two_level_batch_uses_cache_and_is_thread_count_invariant() {
    // Train a tiny predictor, then run the cached two-level batch over an
    // ensemble containing isomorphic duplicates.
    let config = tiny_datagen(6, 5, 0.6, 2, 2, 13);
    let (ds, _) = engine::corpus::generate(&config, &Engine::new(2)).expect("corpus");
    let predictor = ParameterPredictor::train(ModelKind::Linear, &ds).expect("training");
    let graphs = vec![
        generators::cycle(5),
        relabeled_cycle5(),
        generators::star(5),
    ];
    let batch_config = BatchConfig {
        master_seed: 21,
        ..BatchConfig::default()
    };
    let run = |threads: usize| {
        Engine::new(threads)
            .run_two_level_batch(&graphs, 2, &Lbfgsb::default(), &predictor, 1, &batch_config)
            .expect("two-level batch")
    };
    let (serial, serial_report) = run(1);
    let (parallel, _) = run(4);
    // The isomorphic pair shares one cached level-1 solve...
    assert_eq!(serial_report.cache_hits, 1);
    assert_eq!(serial[0].level1_calls, serial[1].level1_calls);
    assert_eq!(serial[0].predicted_init, serial[1].predicted_init);
    // ...and the batch is invariant to worker count.
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.params, b.params);
        assert_eq!(a.total_calls(), b.total_calls());
    }
}

#[test]
fn parallel_protocols_match_serial_protocols() {
    let graphs = fixture_graphs(16, 6, 11);
    let optimizer = Lbfgsb::default();
    let options = Default::default();
    let pool = Pool::new(3);
    let scenario = qaoa::Scenario::Exact;
    let serial = evaluation::naive_protocol(&graphs, 2, &optimizer, 2, &options, 17, &scenario)
        .expect("serial naive");
    let parallel =
        engine::compare::naive_protocol(&graphs, 2, &optimizer, 2, &options, 17, &scenario, &pool)
            .expect("parallel naive");
    assert_eq!(serial, parallel);
}

#[test]
fn seed_derivation_is_schedule_free() {
    // Same key, same seed; different domains/indices, different seeds.
    assert_eq!(
        engine::seed::derive(1, "corpus", 5),
        engine::seed::derive(1, "corpus", 5)
    );
    assert_ne!(
        engine::seed::derive(1, "corpus", 5),
        engine::seed::derive(1, "level1", 5)
    );
    // Job keys are label-sensitive (they key raw graphs, not classes) but
    // stable across constructions.
    let g = generators::cycle(5);
    assert_eq!(
        Job::new(g.clone(), 2, 3).stable_key(0),
        Job::new(g, 2, 3).stable_key(0)
    );
}
