//! Integration tests for the scenario-diversity layer: shot-noise and
//! gate-noise objectives as first-class engine workloads.
//!
//! Contracts under test:
//!
//! * **Thread parity** — sampled and noisy protocol runs are bit-identical
//!   at 1 and 4 workers under the same master seed (all scenario
//!   stochasticity is a pure function of per-job seeds, never of thread
//!   scheduling).
//! * **Cache hygiene** — non-exact scenarios bypass the depth-1 exact
//!   optimum cache entirely; an exact run never serves a sampled/noisy job
//!   its bits and vice versa.
//! * **Exact delegation** — `Scenario::Exact` through the scenario plumbing
//!   reproduces the legacy exact path bit-for-bit.
//! * **Convergence** — the sampled estimate approaches the exact
//!   expectation at the 1/√shots rate.

mod common;

use common::fixture_graphs;
use engine::{BatchConfig, Engine, Job, Pool};
use ml::ModelKind;
use optimize::{Lbfgsb, Options};
use qaoa::sampled::SampledExpectation;
use qaoa::{MaxCutProblem, ParameterPredictor, Scenario, ScenarioInstance};

fn predictor_and_test_graphs() -> (ParameterPredictor, Vec<graphs::Graph>) {
    let config = common::tiny_datagen(8, 5, 0.6, 3, 2, 91);
    let (ds, _) = engine::corpus::generate(&config, &Engine::new(2)).expect("corpus");
    let (train, test) = ds.split_by_graph(0.5);
    let predictor = ParameterPredictor::train(ModelKind::Linear, &train).expect("training");
    (predictor, test.graphs().to_vec())
}

#[test]
fn sampled_protocols_are_bit_identical_at_1_and_4_threads() {
    let (predictor, graphs) = predictor_and_test_graphs();
    let optimizer = Lbfgsb::default();
    let options = Options::default().with_max_iters(60);
    let scenario = Scenario::Sampled { shots: 64 };
    let run = |threads: usize| {
        let pool = Pool::new(threads);
        let naive = engine::compare::naive_protocol(
            &graphs, 2, &optimizer, 2, &options, 11, &scenario, &pool,
        )
        .expect("sampled naive");
        let ml = engine::compare::two_level_protocol(
            &graphs, 2, &optimizer, &predictor, 1, &options, 11, &scenario, &pool,
        )
        .expect("sampled two-level");
        (naive, ml)
    };
    let (naive1, ml1) = run(1);
    let (naive4, ml4) = run(4);
    assert_eq!(naive1.len(), naive4.len());
    for (i, (a, b)) in naive1.iter().zip(&naive4).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "naive sample {i} AR differs");
        assert_eq!(a.1, b.1, "naive sample {i} FC differs");
    }
    for (i, (a, b)) in ml1.iter().zip(&ml4).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "ml sample {i} AR differs");
        assert_eq!(a.1, b.1, "ml sample {i} FC differs");
    }
}

#[test]
fn noisy_protocols_are_bit_identical_at_1_and_4_threads() {
    let (predictor, graphs) = predictor_and_test_graphs();
    let optimizer = Lbfgsb::default();
    let options = Options::default().with_max_iters(60);
    let scenario = Scenario::Noisy {
        p1: 0.002,
        p2: 0.02,
    };
    let run = |threads: usize| {
        let pool = Pool::new(threads);
        let naive = engine::compare::naive_protocol(
            &graphs, 2, &optimizer, 2, &options, 13, &scenario, &pool,
        )
        .expect("noisy naive");
        let ml = engine::compare::two_level_protocol(
            &graphs, 2, &optimizer, &predictor, 1, &options, 13, &scenario, &pool,
        )
        .expect("noisy two-level");
        (naive, ml)
    };
    let (naive1, ml1) = run(1);
    let (naive4, ml4) = run(4);
    for (i, (a, b)) in naive1.iter().zip(&naive4).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "naive sample {i} AR differs");
        assert_eq!(a.1, b.1, "naive sample {i} FC differs");
    }
    for (i, (a, b)) in ml1.iter().zip(&ml4).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "ml sample {i} AR differs");
        assert_eq!(a.1, b.1, "ml sample {i} FC differs");
    }
}

#[test]
fn sampled_batch_runs_on_the_engine_and_skips_the_depth1_cache() {
    // Depth-1 jobs under a non-exact scenario must not populate (or be
    // served by) the exact-optimum cache.
    let jobs: Vec<Job> = fixture_graphs(6, 5, 77)
        .into_iter()
        .map(|g| Job::new(g, 1, 2))
        .collect();
    let config = BatchConfig {
        master_seed: 5,
        scenario: Scenario::Sampled { shots: 32 },
        ..BatchConfig::default()
    };
    let engine = Engine::new(2);
    let (outcomes, report) = engine
        .run_batch(&Lbfgsb::default(), &jobs, &config)
        .expect("sampled batch");
    assert_eq!(outcomes.len(), jobs.len());
    assert_eq!(
        report.cache_hits, 0,
        "sampled jobs must never hit the cache"
    );
    assert_eq!(
        engine.cache().len(),
        0,
        "sampled jobs must never populate the exact cache"
    );

    // Thread parity for the batch path too.
    let (serial, _) = Engine::new(1)
        .run_batch(&Lbfgsb::default(), &jobs, &config)
        .expect("serial sampled batch");
    for (a, b) in outcomes.iter().zip(&serial) {
        assert_eq!(a.params, b.params);
        assert_eq!(a.function_calls, b.function_calls);
    }
}

#[test]
fn exact_scenario_through_batch_matches_legacy_exact_path() {
    // `scenario: Exact` (the default) must leave the engine's behavior
    // byte-for-byte unchanged, cache included.
    let jobs: Vec<Job> = fixture_graphs(6, 5, 31)
        .into_iter()
        .enumerate()
        .map(|(i, g)| Job::new(g, 1 + i % 2, 2))
        .collect();
    let default_config = BatchConfig {
        master_seed: 9,
        ..BatchConfig::default()
    };
    let explicit_exact = BatchConfig {
        master_seed: 9,
        scenario: Scenario::Exact,
        ..BatchConfig::default()
    };
    let (a, _) = Engine::new(2)
        .run_batch(&Lbfgsb::default(), &jobs, &default_config)
        .expect("default batch");
    let (b, _) = Engine::new(2)
        .run_batch(&Lbfgsb::default(), &jobs, &explicit_exact)
        .expect("explicit exact batch");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.params, y.params);
        assert_eq!(x.expectation.to_bits(), y.expectation.to_bits());
    }
}

#[test]
fn sampled_estimate_converges_at_inverse_sqrt_shots() {
    // Statistical contract at the integration level: averaging many
    // fixed-parameter sampled evaluations, the RMS error versus the exact
    // expectation shrinks roughly like 1/√shots.
    let graph = fixture_graphs(1, 6, 3)[0].clone();
    let problem = MaxCutProblem::new(&graph).expect("non-empty");
    let params = [0.7, 0.4];
    let exact = ScenarioInstance::new(problem.clone(), 1, &Scenario::Exact, 0)
        .expect("exact instance")
        .exact_expectation(&params)
        .expect("exact expectation");

    let rms = |shots: u32| {
        let mut sq = 0.0;
        let reps = 24u32;
        for rep in 0..reps {
            let objective = SampledExpectation::new(problem.clone(), 1, shots, u64::from(rep))
                .expect("sampled objective");
            let est = objective.estimate(&params).expect("sampled estimate");
            sq += (est - exact) * (est - exact);
        }
        (sq / f64::from(reps)).sqrt()
    };
    let coarse = rms(32);
    let fine = rms(2048);
    // 64x the shots should cut RMS error ~8x; allow generous slack.
    assert!(
        fine < coarse / 3.0,
        "RMS error should shrink with shots: 32 shots -> {coarse}, 2048 shots -> {fine}"
    );
}
